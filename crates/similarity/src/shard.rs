//! Sharded candidate-pair discovery for the similarity graph.
//!
//! The graph build's dominant cost is discovering which alarm pairs
//! share at least one traffic unit. The sequential reference does it
//! with one global inverted index and a `HashSet<(u32, u32)>`; this
//! module shards the discovery so independent slices run on separate
//! threads and the per-slice work is hash-free.
//!
//! **Why shard by traffic-id range, not by alarm window.** Traffic-unit
//! ids are assigned in first-appearance order ([`FlowTable`] /
//! [`ItemIndex`] both number flows as they first show up, and packet
//! ids are trace positions), so a contiguous id range *is* a time bin
//! of the traffic. Sharding the inverted index by id range is exact by
//! construction: a pair lands in shard `k` iff the two alarms co-occur
//! on an item of bin `k`, and the deduplicated union over bins is
//! precisely the global candidate set. Binning by *alarm window*
//! instead — tempting, since detection windows look like natural
//! shards — is **not** exact at flow granularity: a long-lived flow
//! puts the same flow id into two alarms whose windows never overlap,
//! and window-disjoint shards would silently drop that edge. Id-range
//! bins keep the parallel build byte-identical to the reference (the
//! property test in `tests/shard_equivalence.rs` checks exactly this).
//!
//! Each bin builds a dense per-bin inverted index (a `Vec` indexed by
//! `item - bin_start` — ids are dense, so this replaces the global
//! `HashMap`), emits its co-occurring pairs, and sorts/dedups them
//! locally; the bins are then merged into one globally sorted,
//! deduplicated pair list. Sparse id spaces (ids much larger than the
//! number of occurrences, which dense time-ordered ids never produce
//! but arbitrary callers can) fall back to a per-bin `HashMap` index
//! with identical output.
//!
//! [`FlowTable`]: mawilab_model::FlowTable
//! [`ItemIndex`]: mawilab_model::ItemIndex

use std::collections::HashMap;

/// How many id-range bins to cut the item space into: a few bins per
/// worker so atomic work pulling balances bins of uneven density.
const BINS_PER_WORKER: usize = 4;

/// Dense-index fallback threshold: when the id space is more than
/// this many times larger than the number of id occurrences, the
/// per-bin index uses a `HashMap` instead of a dense `Vec`.
const DENSE_SLACK: usize = 8;

/// Returns all alarm pairs `(a, b)` with `a < b` that share at least
/// one traffic item, globally sorted and deduplicated — the exact
/// candidate set of the sequential reference, discovered bin by bin
/// in parallel.
pub(crate) fn candidate_pairs(traffic: &[Vec<u32>]) -> Vec<(u32, u32)> {
    candidate_pairs_with_bins(traffic, mawilab_exec::thread_count() * BINS_PER_WORKER)
}

/// [`candidate_pairs`] with an explicit bin count — the output is
/// bin-count invariant (tests sweep this directly).
fn candidate_pairs_with_bins(traffic: &[Vec<u32>], requested_bins: usize) -> Vec<(u32, u32)> {
    let Some(max_id) = traffic.iter().filter_map(|s| s.last().copied()).max() else {
        return Vec::new();
    };
    let id_space = max_id as usize + 1;
    let occurrences: usize = traffic.iter().map(|s| s.len()).sum();
    let dense = id_space <= occurrences.saturating_mul(DENSE_SLACK) + 1024;

    let bins = requested_bins.clamp(1, id_space);
    let width = id_space.div_ceil(bins);
    // Bounds are u64: `hi` of the last bin is `max_id + 1`, which
    // overflows u32 when an item id is `u32::MAX`.
    let ranges: Vec<(u64, u64)> = (0..bins)
        .map(|b| {
            let lo = (b * width) as u64;
            let hi = ((b + 1) * width).min(id_space) as u64;
            (lo, hi)
        })
        .filter(|(lo, hi)| lo < hi)
        .collect();

    let per_bin: Vec<Vec<(u32, u32)>> = mawilab_exec::par_map(&ranges, |&(lo, hi)| {
        if dense {
            bin_pairs_dense(traffic, lo, hi)
        } else {
            bin_pairs_sparse(traffic, lo, hi)
        }
    });

    // A pair co-occurring in several bins appears once per bin: merge
    // the per-bin sorted runs and dedup globally. The merged order is
    // the reference's `(a, b)` ascending order.
    let mut pairs: Vec<(u32, u32)> = per_bin.concat();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Pairs co-occurring on an item in `[lo, hi)`, via a dense per-bin
/// inverted index in counting-sort layout (flat entry array — no
/// per-item allocation). Sorted and deduplicated.
fn bin_pairs_dense(traffic: &[Vec<u32>], lo: u64, hi: u64) -> Vec<(u32, u32)> {
    let width = (hi - lo) as usize;
    let slices: Vec<&[u32]> = traffic.iter().map(|s| slice_in_range(s, lo, hi)).collect();
    // Counting sort: occurrences per item, prefix offsets, then fill.
    let mut offsets = vec![0u32; width + 1];
    for s in &slices {
        for &item in *s {
            offsets[(item as u64 - lo) as usize + 1] += 1;
        }
    }
    for k in 0..width {
        offsets[k + 1] += offsets[k];
    }
    let mut entries = vec![0u32; offsets[width] as usize];
    let mut cursor = offsets.clone();
    for (ai, s) in slices.iter().enumerate() {
        for &item in *s {
            let k = (item as u64 - lo) as usize;
            entries[cursor[k] as usize] = ai as u32;
            cursor[k] += 1;
        }
    }
    // Alarms are scanned in index order, so each item's entry run is
    // ascending and emitted pairs satisfy `a < b`.
    pairs_of_index((0..width).map(|k| &entries[offsets[k] as usize..offsets[k + 1] as usize]))
}

/// Same as [`bin_pairs_dense`] for id spaces too sparse to index
/// densely.
fn bin_pairs_sparse(traffic: &[Vec<u32>], lo: u64, hi: u64) -> Vec<(u32, u32)> {
    let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
    for (ai, set) in traffic.iter().enumerate() {
        for &item in slice_in_range(set, lo, hi) {
            index.entry(item).or_default().push(ai as u32);
        }
    }
    pairs_of_index(index.values().map(|v| v.as_slice()))
}

/// The sub-slice of a sorted id set falling in `[lo, hi)`.
fn slice_in_range(set: &[u32], lo: u64, hi: u64) -> &[u32] {
    let start = set.partition_point(|&x| (x as u64) < lo);
    let end = set.partition_point(|&x| (x as u64) < hi);
    &set[start..end]
}

/// Expands per-item alarm lists into sorted, deduplicated pairs.
/// Lists hold alarm indices in ascending order (alarms are scanned in
/// index order), so emitted pairs already satisfy `a < b`.
fn pairs_of_index<'a>(lists: impl Iterator<Item = &'a [u32]>) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut prev: &[u32] = &[];
    for alarms in lists {
        // Dense-overlap fast path: consecutive items held by the
        // exact same alarm set expand to the exact same pairs — one
        // O(k) comparison avoids re-emitting (and later re-sorting)
        // the k²/2 duplicates. This is the shape of worst-case
        // workloads where every alarm shares a common item block.
        if alarms.len() > 1 && alarms == prev {
            continue;
        }
        prev = alarms;
        for i in 0..alarms.len() {
            for j in (i + 1)..alarms.len() {
                pairs.push((alarms[i], alarms[j]));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The candidate set of the sequential reference, straight from
    /// its definition.
    fn reference_pairs(traffic: &[Vec<u32>]) -> Vec<(u32, u32)> {
        let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
        for (ai, set) in traffic.iter().enumerate() {
            for &item in set {
                index.entry(item).or_default().push(ai as u32);
            }
        }
        let mut pairs: std::collections::HashSet<(u32, u32)> = Default::default();
        for alarms in index.values() {
            for i in 0..alarms.len() {
                for j in (i + 1)..alarms.len() {
                    pairs.insert((alarms[i], alarms[j]));
                }
            }
        }
        let mut v: Vec<(u32, u32)> = pairs.into_iter().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_reference_on_overlapping_sets() {
        let traffic = vec![
            vec![1, 2, 3, 900],
            vec![2, 3, 4],
            vec![100, 101],
            vec![3, 100, 900],
            vec![],
        ];
        assert_eq!(candidate_pairs(&traffic), reference_pairs(&traffic));
    }

    #[test]
    fn empty_inputs() {
        assert!(candidate_pairs(&[]).is_empty());
        assert!(candidate_pairs(&[vec![], vec![]]).is_empty());
        assert!(candidate_pairs(&[vec![5, 9]]).is_empty());
    }

    #[test]
    fn sparse_id_space_takes_hashmap_path() {
        // Two items near u32::MAX: dense indexing would allocate 4G
        // slots; the sparse path must produce the same pairs.
        let traffic = vec![vec![7, u32::MAX - 1], vec![u32::MAX - 1], vec![7]];
        assert_eq!(candidate_pairs(&traffic), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn max_id_item_is_not_dropped() {
        // id_space = 2^32: the last bin's exclusive bound overflows
        // u32, so bin bounds must be u64 (regression test).
        let traffic = vec![vec![u32::MAX], vec![7, u32::MAX]];
        assert_eq!(candidate_pairs(&traffic), vec![(0, 1)]);
    }

    #[test]
    fn pair_spanning_many_bins_appears_once() {
        // Alarms sharing items across the whole id range co-occur in
        // every bin; the merged list must still hold the pair once.
        let a: Vec<u32> = (0..1000).collect();
        let traffic = vec![a.clone(), a];
        assert_eq!(candidate_pairs(&traffic), vec![(0, 1)]);
    }

    #[test]
    fn identical_across_bin_counts() {
        // The thread count only picks the bin count; sweeping bins
        // directly covers every sharding the env override can reach
        // without mutating process-wide state (the env path itself is
        // covered by tests/thread_determinism.rs).
        let traffic: Vec<Vec<u32>> = (0..40)
            .map(|i| ((i * 13) % 61..(i * 13) % 61 + 20).collect())
            .collect();
        let expect = reference_pairs(&traffic);
        for bins in [1, 3, 16, 1024] {
            assert_eq!(
                candidate_pairs_with_bins(&traffic, bins),
                expect,
                "{bins} bins"
            );
        }
    }
}
