//! Streaming traffic extraction: alarms → traffic id sets, one chunk
//! at a time.
//!
//! Packets arrive chunk by chunk (second pass of the streaming
//! pipeline, after the detectors produced the alarms); each packet
//! resolves its flow's candidate alarms through the inverted
//! [`AlarmIndex`](crate::index) — memoized per distinct key — and
//! matching traffic-unit ids accumulate per alarm as sorted-run
//! dedup. Ids come from a [`mawilab_model::ItemIndex`] driven in
//! stream order, which assigns exactly the ids a batch
//! [`mawilab_model::FlowTable`] would — so the resulting sets are
//! byte-identical to [`extract_traffic`]'s and everything downstream
//! (graph, Louvain, votes, labels) is oblivious to how the trace was
//! ingested.

use crate::index::{AlarmIndex, HitSink, KeyMemo};
use mawilab_detectors::Alarm;
use mawilab_model::{FlowKey, Packet, TimeWindow};

/// Accumulates per-alarm traffic id sets from a chunked packet
/// stream.
///
/// Internally this is the inverted [`AlarmIndex`](crate::index):
/// candidate alarms resolve once per distinct flow key (memoized
/// across chunks), each packet stabs its flow's candidate run with its
/// own timestamp, and hits accumulate as sorted-run dedup instead of
/// per-hit hashing. Output is byte-identical to the seed per-alarm
/// scan — `tests/kernel_equivalence.rs` pins it against
/// [`extract_traffic_sequential`](crate::extract_traffic_sequential).
pub struct StreamingExtractor<'a> {
    index: AlarmIndex<'a>,
    memo: KeyMemo,
    sink: HitSink,
    /// Scratch: per-packet "matched ≥1 alarm" flags of the last
    /// observed chunk.
    matched: Vec<bool>,
}

impl<'a> StreamingExtractor<'a> {
    /// Prepares extraction for one alarm set.
    pub fn new(alarms: &'a [Alarm]) -> Self {
        StreamingExtractor {
            index: AlarmIndex::new(alarms),
            memo: KeyMemo::default(),
            sink: HitSink::new(alarms.len()),
            matched: Vec::new(),
        }
    }

    /// Folds one chunk into the per-alarm sets. `ids[i]` must be the
    /// traffic-unit id of `packets[i]` (from an `ItemIndex` driven in
    /// stream order). Returns per-packet flags: whether the packet
    /// matched at least one alarm.
    ///
    /// Chunks can carry pre-window stragglers, so only the packet's
    /// own timestamp decides window membership — the nominal
    /// `chunk_window` plays no role in matching.
    pub fn observe(
        &mut self,
        chunk_window: TimeWindow,
        packets: &[Packet],
        ids: &[u32],
    ) -> &[bool] {
        let _ = chunk_window;
        assert_eq!(packets.len(), ids.len(), "one id per packet required");
        self.matched.clear();
        self.matched.resize(packets.len(), false);
        let StreamingExtractor {
            index,
            memo,
            sink,
            matched,
        } = self;
        for (pi, (p, &id)) in packets.iter().zip(ids).enumerate() {
            let run = memo.run_for(index, &FlowKey::of(p));
            if run.is_empty() {
                continue;
            }
            let mut any = false;
            run.stab(p.ts_us, |a| {
                sink.push(a, id);
                any = true;
            });
            matched[pi] = any;
        }
        &self.matched
    }

    /// Finishes extraction: one sorted, deduplicated id set per
    /// alarm, in alarm order — the same shape the batch extractor
    /// returns.
    pub fn into_traffic(self) -> Vec<Vec<u32>> {
        self.sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor::extract_traffic;
    use mawilab_detectors::{AlarmScope, DetectorKind, TraceView, Tuning};
    use mawilab_model::{
        FlowTable, Granularity, ItemIndex, PacketSource, TcpFlags, Trace, TraceChunker, TraceDate,
        TraceMeta, TrafficRule,
    };
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 9, d)
    }

    fn trace() -> Trace {
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let base = meta.window().start_us;
        let mut packets = Vec::new();
        for i in 0..200u64 {
            let src = ip((i % 7) as u8);
            let dst = ip(100 + (i % 3) as u8);
            packets.push(Packet::tcp(
                base + i * 750_000,
                src,
                1000 + (i % 5) as u16,
                dst,
                if i % 4 == 0 { 80 } else { 445 },
                TcpFlags::syn(),
                60,
            ));
        }
        Trace::new(meta, packets)
    }

    fn alarms(t: &Trace) -> Vec<Alarm> {
        let w = t.meta.window();
        let mk = |scope| Alarm {
            detector: DetectorKind::Pca,
            tuning: Tuning::Optimal,
            window: w,
            scope,
            score: 1.0,
        };
        let mut v = vec![
            mk(AlarmScope::SrcHost(ip(1))),
            mk(AlarmScope::DstHost(ip(101))),
            mk(AlarmScope::Rule(TrafficRule {
                dport: Some(445),
                ..Default::default()
            })),
            mk(AlarmScope::FlowSet(vec![
                FlowKey::of(&t.packets[0]),
                FlowKey::of(&t.packets[3]),
            ])),
        ];
        // A window-restricted alarm exercising mid-stream boundaries.
        v.push(Alarm {
            window: TimeWindow::new(w.start_us + 30_000_000, w.start_us + 90_000_000),
            ..mk(AlarmScope::SrcHost(ip(2)))
        });
        v
    }

    #[test]
    fn streaming_matches_batch_extractor_at_all_granularities() {
        let t = trace();
        let flows = FlowTable::build(&t.packets);
        let view = TraceView::new(&t, &flows);
        let alarms = alarms(&t);
        for g in [
            Granularity::Packet,
            Granularity::Uniflow,
            Granularity::Biflow,
        ] {
            let batch = extract_traffic(&view, &alarms, g);
            for bin_us in [1_000_000u64, 5_000_000, 300_000_000] {
                let mut index = ItemIndex::new(g);
                let mut ex = StreamingExtractor::new(&alarms);
                let mut ids = Vec::new();
                let mut source = TraceChunker::new(t.clone(), bin_us);
                while let Some(chunk) = source.next_chunk().unwrap() {
                    index.ids_of(&chunk.packets, &mut ids);
                    ex.observe(chunk.window, &chunk.packets, &ids);
                }
                assert_eq!(ex.into_traffic(), batch, "granularity {g}, bin {bin_us}");
            }
        }
    }

    #[test]
    fn matched_flags_cover_exactly_the_matching_packets() {
        let t = trace();
        let alarms = alarms(&t);
        let mut index = ItemIndex::new(Granularity::Uniflow);
        let mut ex = StreamingExtractor::new(&alarms);
        let mut ids = Vec::new();
        index.ids_of(&t.packets, &mut ids);
        let matched = ex.observe(t.meta.window(), &t.packets, &ids);
        for (i, p) in t.packets.iter().enumerate() {
            let expect = alarms
                .iter()
                .any(|a| a.window.contains(p.ts_us) && a.scope.matches(p));
            assert_eq!(matched[i], expect, "packet {i}");
        }
    }

    #[test]
    fn straggler_packet_outside_chunk_window_still_matches_earlier_alarm() {
        // A jittered capture: the reader folds a 4.9 s packet into
        // the chunk whose nominal window is [5 s, 10 s). An alarm
        // covering [0 s, 5 s) must still claim that packet.
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let base = meta.window().start_us;
        let straggler = Packet::tcp(
            base + 4_900_000,
            ip(1),
            1000,
            ip(2),
            80,
            TcpFlags::syn(),
            60,
        );
        let alarm = Alarm {
            detector: DetectorKind::Kl,
            tuning: Tuning::Optimal,
            window: TimeWindow::new(base, base + 5_000_000),
            scope: AlarmScope::SrcHost(ip(1)),
            score: 1.0,
        };
        let alarms = vec![alarm];
        let mut ex = StreamingExtractor::new(&alarms);
        let chunk_window = TimeWindow::new(base + 5_000_000, base + 10_000_000);
        let matched = ex.observe(chunk_window, &[straggler], &[7]);
        assert_eq!(
            matched,
            &[true],
            "straggler not tested against the earlier alarm"
        );
        assert_eq!(ex.into_traffic(), vec![vec![7]]);
    }

    #[test]
    fn no_alarms_means_no_sets_and_no_matches() {
        let t = trace();
        let mut index = ItemIndex::new(Granularity::Uniflow);
        let mut ex = StreamingExtractor::new(&[]);
        let mut ids = Vec::new();
        index.ids_of(&t.packets, &mut ids);
        let matched = ex.observe(t.meta.window(), &t.packets, &ids);
        assert!(matched.iter().all(|&m| !m));
        assert!(ex.into_traffic().is_empty());
    }
}
