//! The single-pass online MAWILab pipeline: one drain, labels on a
//! sliding horizon.
//!
//! [`StreamingPipeline`](crate::StreamingPipeline) drains every
//! source twice — detect, then rewind and extract — which a live
//! link cannot do. [`OnlinePipeline`] folds both jobs into **one
//! drain**: as each chunk streams past, every detector configuration
//! observes it *and* the extraction/labeling evidence is banked
//! (traffic-unit ids from the incremental `ItemIndex`, compact
//! `(FlowKey, ts, id)` records in the
//! [`HorizonExtractor`], monoidal per-unit
//! [`CommunityEvidence`] profiles). Nothing is ever re-read: a
//! [`NoRewindSource`](mawilab_model::NoRewindSource)-wrapped source
//! completes a whole archive sweep with zero rewind calls.
//!
//! ## The sliding horizon
//!
//! ```text
//!  stream ──► chunk chunk chunk chunk chunk chunk ─ ─ ─►
//!             └─────────────┘ └───────────┘
//!               retired (past   fresh (inside
//!               the lag):        the lag): raw
//!               compact per-     per-chunk
//!               flow runs        records
//!                      ▲                   ▲
//!                      │◄───── lag ───────►│ high-water mark
//! ```
//!
//! The lag governs **evidence retention**, not alarm timing: the
//! paper's detectors calibrate on whole-trace state (PCA subspace,
//! Gamma fits, KL reference histograms), so alarms finalize at end of
//! stream and byte-identity with the oracle holds at *every* lag —
//! `lag = 0` (all evidence compacted on arrival) through
//! `lag ≥ stream` (all evidence raw) produce identical labels, which
//! `tests/online_equivalence.rs` pins across seeds × chunk widths ×
//! thread counts.
//!
//! ## Per-horizon emission
//!
//! Labels are published as [`LabeledWindow`]s on a fixed horizon grid
//! (default [`DEFAULT_HORIZON_US`]): window *W* seals when the
//! high-water mark passes `W.end + lag`, so on a dense stream the
//! label latency is bounded by **lag + one chunk** (an empty-bin gap
//! defers the seal to the next traffic, like any event-driven
//! system). Windows not yet sealed when the stream ends seal at
//! end-of-stream with `sealed_by_finish` set. The flattened windows
//! are exactly the run's labeled communities — emission re-buckets,
//! it never re-labels.

use crate::pipeline::{LabeledReport, PipelineConfig, PipelineTimings};
use crate::streaming::{DrainStats, StreamStats, StreamingReport, FANOUT_MIN_CHUNK_PACKETS};
use crate::warm::WarmState;
use mawilab_combiner::{label_confidences, VoteTable};
use mawilab_detectors::{
    finish_all, observe_all, standard_configurations, ChunkView, Detector, IncrementalDetector,
};
use mawilab_label::{
    label_communities_streaming, window_communities, CommunityEvidence, LabeledWindow,
};
use mawilab_model::{ItemIndex, PacketSource, SourceError};
use mawilab_similarity::{HorizonExtractor, HorizonStats};
use std::time::Instant;

/// Default evidence-retention lag: 30 s — six default chunks, two
/// orders of magnitude below a day, comfortably above every
/// detector's analysis bin.
pub const DEFAULT_LAG_US: u64 = 30_000_000;

/// Default horizon window width: 60 s of labels per emission.
pub const DEFAULT_HORIZON_US: u64 = 60_000_000;

/// Everything one single-pass run produced: the full
/// [`StreamingReport`] (same shape as the two-pass pipeline's, so
/// every consumer and oracle comparison works unchanged) plus the
/// per-horizon label feed.
#[derive(Debug)]
pub struct OnlineReport {
    /// The run's report — byte-identical to what the two-pass
    /// [`StreamingPipeline`](crate::StreamingPipeline) produces on
    /// the same stream.
    pub report: StreamingReport,
    /// The label feed: one [`LabeledWindow`] per horizon window, in
    /// window order. Flattening their communities reproduces
    /// `report.labeled.communities` exactly.
    pub windows: Vec<LabeledWindow>,
    /// The evidence-retention lag the run used, µs.
    pub lag_us: u64,
    /// The horizon window width, µs.
    pub horizon_us: u64,
    /// Retire/fresh accounting of the horizon extractor.
    pub horizon_stats: HorizonStats,
}

impl OnlineReport {
    /// Largest label latency across windows sealed by the moving
    /// high-water mark (finish-sealed windows measure stream end, not
    /// the horizon mechanism).
    pub fn max_sealed_latency_us(&self) -> u64 {
        self.windows
            .iter()
            .filter(|w| !w.sealed_by_finish)
            .map(|w| w.latency_us())
            .max()
            .unwrap_or(0)
    }
}

/// Tracks which horizon windows the stream's high-water mark has
/// sealed, and when.
struct SealTracker {
    origin_us: u64,
    horizon_us: u64,
    lag_us: u64,
    high_water_us: u64,
    /// Seal time of window `k`, for `k < sealed.len()`; later windows
    /// are still open.
    sealed: Vec<u64>,
}

impl SealTracker {
    fn new(origin_us: u64, horizon_us: u64, lag_us: u64) -> Self {
        SealTracker {
            origin_us,
            horizon_us,
            lag_us,
            high_water_us: origin_us,
            sealed: Vec::new(),
        }
    }

    /// Window `k`'s nominal end.
    fn window_end(&self, k: usize) -> u64 {
        self.origin_us + (k as u64 + 1) * self.horizon_us
    }

    /// Advances the high-water mark to a chunk end, sealing every
    /// window whose `end + lag` it passed.
    fn advance(&mut self, chunk_end_us: u64) {
        let before_us = self.high_water_us;
        self.high_water_us = self.high_water_us.max(chunk_end_us);
        debug_assert!(
            self.high_water_us >= before_us,
            "watermark must be monotone non-decreasing"
        );
        while self
            .window_end(self.sealed.len())
            .saturating_add(self.lag_us)
            <= self.high_water_us
        {
            self.sealed.push(self.high_water_us);
        }
        debug_assert!(
            self.sealed.windows(2).all(|w| w[0] <= w[1]),
            "seal times must be monotone non-decreasing"
        );
        debug_assert!(
            self.sealed.last().is_none_or(|&s| s <= self.high_water_us),
            "a window cannot seal after the watermark that sealed it"
        );
    }

    /// Horizon windows needed to cover the stream (and any community
    /// span start).
    fn window_count(&self, max_community_start_us: Option<u64>) -> usize {
        let cover_end = self
            .high_water_us
            .max(max_community_start_us.map_or(0, |s| s + 1));
        if cover_end <= self.origin_us {
            return 0;
        }
        ((cover_end - self.origin_us).div_ceil(self.horizon_us)) as usize
    }
}

/// The end-to-end single-pass MAWILab pipeline.
pub struct OnlinePipeline {
    config: PipelineConfig,
    detectors: Vec<Box<dyn Detector>>,
    lag_us: u64,
    horizon_us: u64,
}

impl OnlinePipeline {
    /// Builds the pipeline with the paper's 12 standard detector
    /// configurations and the default lag/horizon.
    pub fn new(config: PipelineConfig) -> Self {
        OnlinePipeline {
            config,
            detectors: standard_configurations(),
            lag_us: DEFAULT_LAG_US,
            horizon_us: DEFAULT_HORIZON_US,
        }
    }

    /// Replaces the detector set (any batch [`Detector`] works — its
    /// incremental form is used).
    pub fn with_detectors(mut self, detectors: Vec<Box<dyn Detector>>) -> Self {
        self.detectors = detectors;
        self
    }

    /// Sets the evidence-retention lag (µs). Labels are byte-identical
    /// at any lag; the lag trades raw-evidence memory against how
    /// long a hypothetical early-finalizing detector set could still
    /// reach back.
    pub fn with_lag_us(mut self, lag_us: u64) -> Self {
        self.lag_us = lag_us;
        self
    }

    /// Sets the horizon window width (µs) of the label feed.
    pub fn with_horizon_us(mut self, horizon_us: u64) -> Self {
        assert!(horizon_us > 0, "horizon width must be positive");
        self.horizon_us = horizon_us;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Drains the source **once** and runs all four steps. Never
    /// calls [`rewind`](PacketSource::rewind).
    pub fn run<S: PacketSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<OnlineReport, SourceError> {
        self.run_warm(source, None)
    }

    /// [`run`](Self::run) with day-over-day warm state: detector
    /// baselines start from the carried priors
    /// ([`warm_begin`](IncrementalDetector::warm_begin)), the Louvain
    /// stage is seeded from yesterday's communities, and the finished
    /// day's state is absorbed back for tomorrow. `None` — or warm
    /// state with `decay == 0.0` — is the cold path, byte for byte.
    pub fn run_warm<S: PacketSource + ?Sized>(
        &self,
        source: &mut S,
        mut warm: Option<&mut WarmState>,
    ) -> Result<OnlineReport, SourceError> {
        let meta = source.meta().clone();
        let origin_us = meta.window().start_us;
        let mut stats = StreamStats {
            horizon_lag_us: Some(self.lag_us),
            ..Default::default()
        };
        let mut drain = DrainStats::default();

        // The one drain: detectors observe each chunk (same fan-out
        // and same inline cutover as the two-pass pipeline, so the
        // observation schedule — and therefore every alarm — is
        // identical), while the extraction/labeling evidence is
        // banked alongside.
        let t0 = Instant::now();
        if let Some(w) = warm.as_deref_mut() {
            w.begin_day(meta.era, meta.date);
        }
        let mut incs: Vec<Box<dyn IncrementalDetector>> =
            self.detectors.iter().map(|d| d.incremental()).collect();
        for inc in &mut incs {
            match warm.as_deref() {
                Some(w) => {
                    let label = inc.label();
                    // The gap-compounded decay: a multi-day calendar
                    // gap shrinks yesterday's priors by decay^gap, so
                    // an epoch jump is effectively a cold start.
                    inc.warm_begin(&meta, w.prior_for(&label), w.effective_decay());
                }
                None => inc.begin(&meta),
            }
        }
        let mut index = ItemIndex::new(self.config.granularity);
        let mut evidence = CommunityEvidence::new(self.config.granularity);
        let mut horizon = HorizonExtractor::new(self.lag_us);
        let mut seals = SealTracker::new(origin_us, self.horizon_us, self.lag_us);
        let mut ids: Vec<u32> = Vec::new();
        while let Some(chunk) = source.next_chunk()? {
            drain.chunks += 1;
            drain.packets += chunk.packets.len() as u64;
            stats.peak_chunk_packets = stats.peak_chunk_packets.max(chunk.packets.len());
            let view = ChunkView::of_chunk(&meta, chunk);
            if chunk.packets.len() < FANOUT_MIN_CHUNK_PACKETS {
                for inc in &mut incs {
                    inc.observe(&view);
                }
            } else {
                observe_all(&mut incs, &view);
            }
            index.ids_of(&chunk.packets, &mut ids);
            horizon.observe(chunk.window, &chunk.packets, &ids);
            evidence.observe_units(&chunk.packets, &ids);
            seals.advance(chunk.window.end_us);
        }
        let alarms = finish_all(&mut incs);
        if let Some(w) = warm.as_deref_mut() {
            for inc in &mut incs {
                let label = inc.label();
                w.absorb_prior(label, inc.export_prior());
            }
        }
        drop(incs);
        stats.drains = vec![drain];
        let detect = t0.elapsed();

        // End of stream: resolve the finished alarms against the
        // banked evidence — the deferred half of what the two-pass
        // extraction pass did per chunk.
        let t1 = Instant::now();
        let resolved = horizon.finalize(&alarms);
        evidence.retain_matched(&resolved.matched);
        stats.items = index.item_count();
        let horizon_stats = resolved.stats;
        let extract = t1.elapsed();

        // Steps 2–4: same batch code as the two-pass path. Warm state
        // only *seeds* Louvain — the similarity graph itself is built
        // exactly as in the cold path, so the fixed point refinement
        // converges to is still a cold-reachable partition. At zero
        // decay (or no warm state) the seed is `None` and the cold
        // path runs, byte for byte.
        let seed = warm.as_deref_mut().and_then(|w| w.seed_for(&alarms));
        let (communities, mining) = self.config.estimator().estimate_from_traffic_seeded(
            alarms,
            resolved.traffic,
            seed.as_ref(),
        );
        if let Some(w) = warm {
            w.absorb_day(&communities);
        }

        let t2 = Instant::now();
        let votes = VoteTable::from_communities(&communities);
        let decisions = self.config.strategy.build().classify(&votes);
        let confidences = label_confidences(&votes, &decisions, self.config.confidence_thresholds);
        let combine = t2.elapsed();

        let t3 = Instant::now();
        let labeled = LabeledReport {
            communities: label_communities_streaming(
                meta.window(),
                &index,
                &evidence,
                &communities,
                &decisions,
                &confidences,
                self.config.min_support,
            ),
        };
        let label = t3.elapsed();

        // Bucket the labels onto the horizon grid and attach seal
        // times. Stream end seals every still-open window.
        let max_start = labeled.communities.iter().map(|c| c.window.start_us).max();
        let n_windows = seals.window_count(max_start);
        let stream_end_us = seals.high_water_us;
        let windows: Vec<LabeledWindow> =
            window_communities(origin_us, self.horizon_us, n_windows, &labeled.communities)
                .into_iter()
                .enumerate()
                .map(|(k, communities)| LabeledWindow {
                    window: mawilab_model::chunk_window(origin_us, self.horizon_us, k as u64),
                    sealed_at_us: seals.sealed.get(k).copied().unwrap_or(stream_end_us),
                    sealed_by_finish: k >= seals.sealed.len(),
                    communities,
                })
                .collect();
        // Count watermark seals that landed before their window's end
        // — the clock inversion `latency_us` used to clamp to 0.
        // Always 0 by `SealTracker` construction; a tripwire stat, not
        // an expected population.
        let mut horizon_stats = horizon_stats;
        horizon_stats.negative_latency =
            windows.iter().filter(|w| w.sealed_before_end()).count() as u64;

        Ok(OnlineReport {
            report: StreamingReport {
                communities,
                votes,
                decisions,
                labeled,
                timings: PipelineTimings {
                    detect,
                    extract,
                    graph: mining.graph,
                    louvain: mining.louvain,
                    combine,
                    label,
                },
                stats,
            },
            windows,
            lag_us: self.lag_us,
            horizon_us: self.horizon_us,
            horizon_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingPipeline;
    use mawilab_model::{NoRewindSource, TraceChunker, DEFAULT_CHUNK_US};
    use mawilab_synth::{SynthConfig, TraceGenerator};

    fn small_trace() -> mawilab_synth::LabeledTrace {
        TraceGenerator::new(SynthConfig::default().with_seed(99)).generate()
    }

    #[test]
    fn single_pass_report_matches_two_pass_through_a_sealed_source() {
        let lt = small_trace();
        let config = PipelineConfig::default();
        let mut oracle_source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let oracle = StreamingPipeline::new(config.clone())
            .run(&mut oracle_source)
            .unwrap();

        let mut source = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
        let online = OnlinePipeline::new(config).run(&mut source).unwrap();
        assert_eq!(source.rewinds_refused(), 0, "single-pass must never rewind");

        assert_eq!(online.report.communities.alarms, oracle.communities.alarms);
        assert_eq!(
            online.report.communities.traffic,
            oracle.communities.traffic
        );
        assert_eq!(online.report.votes, oracle.votes);
        assert_eq!(online.report.decisions, oracle.decisions);
        assert_eq!(
            online.report.labeled.communities.len(),
            oracle.labeled.communities.len()
        );
        // Ingest accounting: one drain of the same stream.
        assert_eq!(online.report.stats.passes(), 1);
        assert_eq!(online.report.stats.chunks(), oracle.stats.chunks());
        assert_eq!(online.report.stats.packets(), oracle.stats.packets());
        assert_eq!(
            online.report.stats.packets_drained() * 2,
            oracle.stats.packets_drained()
        );
        assert_eq!(online.report.stats.horizon_lag_us, Some(DEFAULT_LAG_US));
    }

    #[test]
    fn windows_flatten_back_to_the_labeled_communities() {
        let lt = small_trace();
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let online = OnlinePipeline::new(PipelineConfig::default())
            .run(&mut source)
            .unwrap();
        assert!(!online.windows.is_empty());
        let flattened: Vec<usize> = online
            .windows
            .iter()
            .flat_map(|w| &w.communities)
            .map(|c| c.community)
            .collect();
        let direct: Vec<usize> = online
            .report
            .labeled
            .communities
            .iter()
            .map(|c| c.community)
            .collect();
        assert_eq!(flattened, direct, "emission re-buckets, never re-labels");
        // Interior windows hold exactly the communities whose span
        // starts inside them (window 0 / the last window also absorb
        // off-grid folds).
        let last = online.windows.len() - 1;
        for (k, w) in online.windows.iter().enumerate() {
            for c in &w.communities {
                let in_window = w.window.contains(c.window.start_us);
                let folded_front = k == 0 && c.window.start_us < w.window.start_us;
                let folded_back = k == last && c.window.start_us >= w.window.end_us;
                assert!(
                    in_window || folded_front || folded_back,
                    "community start {} outside window {:?}",
                    c.window.start_us,
                    w.window
                );
            }
        }
    }

    #[test]
    fn seal_latency_is_bounded_by_lag_plus_one_chunk_on_a_dense_stream() {
        // The default synth trace is 60 s — shrink the horizon so
        // several windows seal while the stream is still flowing.
        let lt = small_trace();
        let lag = 5_000_000;
        let horizon = 10_000_000;
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let online = OnlinePipeline::new(PipelineConfig::default())
            .with_lag_us(lag)
            .with_horizon_us(horizon)
            .run(&mut source)
            .unwrap();
        let sealed: Vec<&LabeledWindow> = online
            .windows
            .iter()
            .filter(|w| !w.sealed_by_finish)
            .collect();
        assert!(
            !sealed.is_empty(),
            "no window sealed by the high-water mark"
        );
        for w in &sealed {
            assert!(
                w.latency_us() <= lag + DEFAULT_CHUNK_US,
                "window {:?} latency {} exceeds lag + one chunk",
                w.window,
                w.latency_us()
            );
        }
        assert!(online.max_sealed_latency_us() <= lag + DEFAULT_CHUNK_US);
        // The trailing lag's worth of windows seals at stream end.
        assert!(online.windows.iter().any(|w| w.sealed_by_finish));
    }

    #[test]
    fn warm_run_at_zero_decay_matches_cold_run() {
        let lt = small_trace();
        let config = PipelineConfig::default();
        let mut cold_source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let cold = OnlinePipeline::new(config.clone())
            .run(&mut cold_source)
            .unwrap();

        let mut warm_state = WarmState::new(0.0);
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let warm = OnlinePipeline::new(config)
            .run_warm(&mut source, Some(&mut warm_state))
            .unwrap();

        assert_eq!(
            warm.report.communities.alarms,
            cold.report.communities.alarms
        );
        assert_eq!(
            warm.report.communities.partition,
            cold.report.communities.partition
        );
        assert_eq!(warm.report.votes, cold.report.votes);
        assert_eq!(warm.report.decisions, cold.report.decisions);
        assert_eq!(warm_state.days(), 1);
        assert_eq!(warm_state.seeded_days(), 0, "zero decay must never seed");
        assert_eq!(warm_state.carried_signatures(), 0);
    }

    #[test]
    fn warm_state_carries_priors_and_communities_across_days() {
        let config = PipelineConfig::default();
        let pipeline = OnlinePipeline::new(config);
        let mut warm = WarmState::new(0.5);
        for seed in [99u64, 100] {
            let lt = TraceGenerator::new(SynthConfig::default().with_seed(seed)).generate();
            let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
            pipeline.run_warm(&mut source, Some(&mut warm)).unwrap();
        }
        assert_eq!(warm.days(), 2);
        assert!(
            warm.carried_signatures() > 0,
            "an alarming day must leave a community carry"
        );
        assert!(
            warm.prior_for("PCA/optimal").is_some(),
            "PCA baselines must be carried"
        );
    }

    #[test]
    fn empty_stream_yields_no_windows() {
        let meta = mawilab_model::TraceMeta::standard(mawilab_model::TraceDate::new(2004, 6, 2));
        let trace = mawilab_model::Trace::new(meta, vec![]);
        let mut source = TraceChunker::new(trace, DEFAULT_CHUNK_US);
        let online = OnlinePipeline::new(PipelineConfig::default())
            .run(&mut source)
            .unwrap();
        assert_eq!(online.report.alarm_count(), 0);
        assert!(online.windows.is_empty());
        assert_eq!(online.report.stats.chunks(), 0);
        assert_eq!(online.report.stats.passes(), 1);
    }
}
