//! The streaming MAWILab pipeline: pcap → labels at constant packet
//! memory.
//!
//! [`StreamingPipeline`] runs the four-step methodology over any
//! [`PacketSource`] in **two passes**, never holding more than one
//! chunk of packets alive:
//!
//! 1. **Detection pass** — every configuration's
//!    [`IncrementalDetector`] observes each chunk (in parallel across
//!    configurations via scoped threads, as in the batch pipeline)
//!    and reports its alarms at end of stream. Detector state is
//!    chunk-boundary invariant, so the alarms are identical to the
//!    batch pipeline's.
//! 2. **Extraction pass** — the source is rewound and drained again:
//!    an [`ItemIndex`] reassigns the exact traffic-unit ids a batch
//!    `FlowTable` would, the [`StreamingExtractor`] accumulates
//!    per-alarm traffic sets, and [`CommunityEvidence`] gathers the
//!    per-unit profiles/transactions the labeling step needs.
//!
//! Everything after extraction — similarity graph, Louvain, vote
//! table, combination strategy, taxonomy labels, Apriori summaries —
//! is the *unchanged* batch code, so
//! [`StreamingPipeline::run`] produces decisions and labels
//! byte-identical to [`MawilabPipeline::run`] on the materialised
//! trace (asserted by `tests/streaming_equivalence.rs`).
//!
//! Peak **packet** memory: one chunk (+ one look-ahead packet in the
//! pcap reader). Accumulated state is keyed by traffic aggregates,
//! not packets: fixed-size sketch/picture state for PCA, Gamma and
//! Hough; per-flow entries for the flow index, heuristic profiles and
//! Hough pixel sets; per-(bin, distinct 4-tuple) counts for KL. The
//! aggregate state is far below packet volume on normal traffic, but
//! the flow- and tuple-keyed parts do grow with traffic diversity —
//! spoofed-source floods approach one tuple entry per packet, so the
//! hard constant bound covers packets, not every byte of detector
//! state.

use crate::pipeline::{LabeledReport, PipelineConfig, PipelineTimings};
use mawilab_combiner::{Decision, VoteTable};
use mawilab_detectors::Alarm;
use mawilab_detectors::{standard_configurations, ChunkView, Detector, IncrementalDetector};
use mawilab_label::{label_communities_streaming, CommunityEvidence};
use mawilab_model::{ItemIndex, PacketChunk, PacketSource, SourceError};
use mawilab_similarity::{AlarmCommunities, StreamingExtractor};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Ingest statistics of one streaming run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Chunks drained per pass (both passes see the same stream).
    pub chunks: usize,
    /// Total packets streamed per pass.
    pub packets: u64,
    /// Largest number of packets alive at once — the size of the
    /// biggest single chunk. This is the constant-memory bound.
    pub peak_chunk_packets: usize,
    /// Distinct traffic units assigned during extraction.
    pub items: usize,
}

/// Everything the streaming pipeline produced for one stream.
#[derive(Debug)]
pub struct StreamingReport {
    /// Step-2 output: alarms, traffic sets, graph, partition.
    pub communities: AlarmCommunities,
    /// Step-3 input: the 12-configuration vote table.
    pub votes: VoteTable,
    /// Step-3 output: one decision per community.
    pub decisions: Vec<Decision>,
    /// Step-4 output: labeled communities.
    pub labeled: LabeledReport,
    /// Wall-clock accounting (detect = pass 1, extract = pass 2
    /// drain, then graph / Louvain / combine / label).
    pub timings: PipelineTimings,
    /// Ingest statistics.
    pub stats: StreamStats,
}

impl StreamingReport {
    /// Total number of alarms the detectors raised.
    pub fn alarm_count(&self) -> usize {
        self.communities.alarms.len()
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.communities.community_count()
    }
}

/// The end-to-end streaming MAWILab pipeline.
pub struct StreamingPipeline {
    config: PipelineConfig,
    detectors: Vec<Box<dyn Detector>>,
}

impl StreamingPipeline {
    /// Builds the pipeline with the paper's 12 standard detector
    /// configurations.
    pub fn new(config: PipelineConfig) -> Self {
        StreamingPipeline {
            config,
            detectors: standard_configurations(),
        }
    }

    /// Replaces the detector set (any batch [`Detector`] works — its
    /// incremental form is used).
    pub fn with_detectors(mut self, detectors: Vec<Box<dyn Detector>>) -> Self {
        self.detectors = detectors;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Drains the source twice and runs all four steps, at constant
    /// peak packet memory.
    pub fn run<S: PacketSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<StreamingReport, SourceError> {
        let meta = source.meta().clone();
        let mut stats = StreamStats::default();

        // Pass 1: incremental detection, parallel across configs.
        // One long-lived worker thread per configuration for the
        // whole drain (spawning per chunk would put thread creation
        // in the ingest hot loop); chunks are shared via `Arc` over
        // bounded rendezvous channels, so backpressure keeps at most
        // a couple of chunks alive regardless of stream length.
        let t0 = Instant::now();
        let mut incs: Vec<Box<dyn IncrementalDetector>> =
            self.detectors.iter().map(|d| d.incremental()).collect();
        for inc in &mut incs {
            inc.begin(&meta);
        }
        let meta_ref = &meta;
        let (alarms, pass1_err) = std::thread::scope(|s| {
            let mut senders: Vec<mpsc::SyncSender<Arc<PacketChunk>>> = Vec::new();
            let mut handles = Vec::new();
            for mut inc in incs {
                let (tx, rx) = mpsc::sync_channel::<Arc<PacketChunk>>(1);
                senders.push(tx);
                handles.push(s.spawn(move || {
                    while let Ok(chunk) = rx.recv() {
                        inc.observe(&ChunkView::of_chunk(meta_ref, &chunk));
                    }
                    inc.finish()
                }));
            }
            let mut err = None;
            loop {
                match source.next_chunk() {
                    Ok(Some(chunk)) => {
                        stats.chunks += 1;
                        stats.packets += chunk.packets.len() as u64;
                        stats.peak_chunk_packets =
                            stats.peak_chunk_packets.max(chunk.packets.len());
                        let shared = Arc::new(chunk.clone());
                        for tx in &senders {
                            // A send error means the worker panicked;
                            // the join below surfaces that panic.
                            let _ = tx.send(Arc::clone(&shared));
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            drop(senders); // close channels: workers finish()
            let mut groups: Vec<Vec<Alarm>> = Vec::with_capacity(handles.len());
            for h in handles {
                groups.push(h.join().expect("detector worker panicked"));
            }
            (groups.concat(), err)
        });
        if let Some(e) = pass1_err {
            return Err(e);
        }
        let detect = t0.elapsed();

        // Pass 2: traffic extraction + labeling evidence.
        let t1 = Instant::now();
        source.rewind()?;
        let mut index = ItemIndex::new(self.config.granularity);
        let mut evidence = CommunityEvidence::new(self.config.granularity);
        let traffic = {
            let mut extractor = StreamingExtractor::new(&alarms);
            let mut ids: Vec<u32> = Vec::new();
            while let Some(chunk) = source.next_chunk()? {
                index.ids_of(&chunk.packets, &mut ids);
                let matched = extractor.observe(chunk.window, &chunk.packets, &ids);
                evidence.observe(&chunk.packets, &ids, matched);
            }
            extractor.into_traffic()
        };
        stats.items = index.item_count();
        let extract = t1.elapsed();

        // Steps 2–4 on the accumulated state: unchanged batch code.
        let (communities, mining) = self
            .config
            .estimator()
            .estimate_from_traffic_timed(alarms, traffic);

        let t2 = Instant::now();
        let votes = VoteTable::from_communities(&communities);
        let decisions = self.config.strategy.build().classify(&votes);
        let combine = t2.elapsed();

        let t3 = Instant::now();
        let labeled = LabeledReport {
            communities: label_communities_streaming(
                meta.window(),
                &index,
                &evidence,
                &communities,
                &decisions,
                self.config.min_support,
            ),
        };
        let label = t3.elapsed();

        Ok(StreamingReport {
            communities,
            votes,
            decisions,
            labeled,
            timings: PipelineTimings {
                detect,
                extract,
                graph: mining.graph,
                louvain: mining.louvain,
                combine,
                label,
            },
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MawilabPipeline;
    use mawilab_label::MawilabLabel;
    use mawilab_model::{TraceChunker, DEFAULT_CHUNK_US};
    use mawilab_synth::{SynthConfig, TraceGenerator};

    fn small_trace() -> mawilab_synth::LabeledTrace {
        TraceGenerator::new(SynthConfig::default().with_seed(99)).generate()
    }

    #[test]
    fn streaming_report_is_consistent() {
        let lt = small_trace();
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let report = StreamingPipeline::new(PipelineConfig::default())
            .run(&mut source)
            .unwrap();
        assert!(report.alarm_count() > 0);
        assert!(report.community_count() > 0);
        assert_eq!(report.decisions.len(), report.community_count());
        assert_eq!(report.labeled.communities.len(), report.community_count());
        assert_eq!(report.stats.packets, lt.trace.len() as u64);
        assert!(report.stats.chunks > 1, "expected a multi-chunk stream");
        assert!(report.stats.peak_chunk_packets < lt.trace.len());
    }

    #[test]
    fn streaming_matches_batch_pipeline() {
        let lt = small_trace();
        let config = PipelineConfig::default();
        let batch = MawilabPipeline::new(config.clone()).run(&lt.trace);
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let streamed = StreamingPipeline::new(config).run(&mut source).unwrap();
        assert_eq!(streamed.communities.alarms, batch.communities.alarms);
        assert_eq!(streamed.communities.traffic, batch.communities.traffic);
        assert_eq!(streamed.votes, batch.votes);
        assert_eq!(streamed.decisions, batch.decisions);
        let labels: Vec<MawilabLabel> = streamed
            .labeled
            .communities
            .iter()
            .map(|c| c.label)
            .collect();
        let batch_labels: Vec<MawilabLabel> =
            batch.labeled.communities.iter().map(|c| c.label).collect();
        assert_eq!(labels, batch_labels);
    }

    #[test]
    fn empty_stream_is_handled() {
        let meta = mawilab_model::TraceMeta::standard(mawilab_model::TraceDate::new(2004, 6, 2));
        let trace = mawilab_model::Trace::new(meta, vec![]);
        let mut source = TraceChunker::new(trace, DEFAULT_CHUNK_US);
        let report = StreamingPipeline::new(PipelineConfig::default())
            .run(&mut source)
            .unwrap();
        assert_eq!(report.alarm_count(), 0);
        assert_eq!(report.community_count(), 0);
        assert_eq!(report.stats.chunks, 0);
    }
}
