//! The streaming MAWILab pipeline: pcap → labels at constant packet
//! memory.
//!
//! [`StreamingPipeline`] runs the four-step methodology over any
//! [`PacketSource`] in **two passes**, never holding more than one
//! chunk of packets alive:
//!
//! 1. **Detection pass** — every configuration's
//!    [`IncrementalDetector`] observes each chunk (in parallel across
//!    configurations through the shared `mawilab-exec` fan-out, so
//!    `MAWILAB_THREADS` governs this pass like every other stage, and
//!    day-level harness fan-out does not multiply detector threads)
//!    and reports its alarms at end of stream. The chunk is lent to
//!    all workers by reference — never copied out of the source's
//!    buffer. Detector state is chunk-boundary invariant, so the
//!    alarms are identical to the batch pipeline's.
//! 2. **Extraction pass** — the source is rewound and drained again:
//!    an [`ItemIndex`] reassigns the exact traffic-unit ids a batch
//!    `FlowTable` would, the [`StreamingExtractor`] accumulates
//!    per-alarm traffic sets, and [`CommunityEvidence`] gathers the
//!    per-unit profiles/transactions the labeling step needs.
//!
//! Everything after extraction — similarity graph, Louvain, vote
//! table, combination strategy, taxonomy labels, Apriori summaries —
//! is the *unchanged* batch code, so
//! [`StreamingPipeline::run`] produces decisions and labels
//! byte-identical to [`MawilabPipeline::run`] on the materialised
//! trace (asserted by `tests/streaming_equivalence.rs`).
//!
//! Since the single-pass [`OnlinePipeline`](crate::OnlinePipeline)
//! landed, this two-pass pipeline's main job is to be its
//! **equivalence oracle**: an independently-built path to the same
//! labels (mirroring how `generate_sequential` anchors the sharded
//! generator and `build_graph_sequential` the sharded graph),
//! byte-compared in `tests/online_equivalence.rs`. It also remains
//! the only option for alarm-first consumers that genuinely need the
//! alarms before re-walking the stream.
//!
//! Peak **packet** memory: one chunk (+ one look-ahead packet in the
//! pcap reader). Accumulated state is keyed by traffic aggregates,
//! not packets: fixed-size sketch/picture state for PCA, Gamma and
//! Hough; per-flow entries for the flow index, heuristic profiles and
//! Hough pixel sets; per-(bin, distinct 4-tuple) counts for KL. The
//! aggregate state is far below packet volume on normal traffic, but
//! the flow- and tuple-keyed parts do grow with traffic diversity —
//! spoofed-source floods approach one tuple entry per packet, so the
//! hard constant bound covers packets, not every byte of detector
//! state.

use crate::pipeline::{LabeledReport, PipelineConfig, PipelineTimings};
use mawilab_combiner::{label_confidences, Decision, VoteTable};
use mawilab_detectors::{
    finish_all, observe_all, standard_configurations, ChunkView, Detector, IncrementalDetector,
};
use mawilab_label::{label_communities_streaming, CommunityEvidence};
use mawilab_model::{ItemIndex, PacketSource, SourceError};
use mawilab_similarity::{AlarmCommunities, StreamingExtractor};
use std::time::Instant;

/// Chunk/packet counters of one full drain of a source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Chunks the drain consumed.
    pub chunks: usize,
    /// Packets the drain consumed.
    pub packets: u64,
}

/// Ingest statistics of one streaming run — per-drain, because the
/// two ingest modes drain differently: the legacy two-pass
/// [`StreamingPipeline`] records two entries (detection, then
/// extraction after the rewind), the single-pass
/// [`OnlinePipeline`](crate::OnlinePipeline) exactly one.
///
/// [`OnlinePipeline`]: crate::online::OnlinePipeline
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// One entry per drain of the source, in drain order.
    pub drains: Vec<DrainStats>,
    /// Evidence-retention lag of the single-pass sliding horizon
    /// (`None` on the two-pass path, which retains everything via the
    /// rewind instead).
    pub horizon_lag_us: Option<u64>,
    /// Largest number of packets alive at once — the size of the
    /// biggest single chunk. This is the constant-memory bound.
    pub peak_chunk_packets: usize,
    /// Distinct traffic units assigned during extraction.
    pub items: usize,
}

impl StreamStats {
    /// Number of times the source was drained (1 = single-pass).
    pub fn passes(&self) -> usize {
        self.drains.len()
    }

    /// Chunks of the stream, as seen by the first drain.
    pub fn chunks(&self) -> usize {
        self.drains.first().map_or(0, |d| d.chunks)
    }

    /// Packets of the stream, as seen by the first drain.
    pub fn packets(&self) -> u64 {
        self.drains.first().map_or(0, |d| d.packets)
    }

    /// Total packets pulled across **all** drains — the real ingest
    /// cost (2× the stream for two-pass, 1× for single-pass).
    pub fn packets_drained(&self) -> u64 {
        self.drains.iter().map(|d| d.packets).sum()
    }
}

/// Everything the streaming pipeline produced for one stream.
#[derive(Debug)]
pub struct StreamingReport {
    /// Step-2 output: alarms, traffic sets, graph, partition.
    pub communities: AlarmCommunities,
    /// Step-3 input: the 12-configuration vote table.
    pub votes: VoteTable,
    /// Step-3 output: one decision per community.
    pub decisions: Vec<Decision>,
    /// Step-4 output: labeled communities.
    pub labeled: LabeledReport,
    /// Wall-clock accounting (detect = pass 1, extract = pass 2
    /// drain, then graph / Louvain / combine / label).
    pub timings: PipelineTimings,
    /// Ingest statistics.
    pub stats: StreamStats,
}

impl StreamingReport {
    /// Total number of alarms the detectors raised.
    pub fn alarm_count(&self) -> usize {
        self.communities.alarms.len()
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.communities.community_count()
    }
}

/// Chunks below this packet count are observed inline rather than
/// fanned out: `observe_all` spins up a scoped-thread round per call,
/// and for near-empty chunks (narrow `--chunk-us` bins, quiet
/// periods) the spawn/join barrier would dwarf the detector work
/// itself. The cutover is by chunk size only — never by thread count
/// — so output stays identical at any `MAWILAB_THREADS` setting
/// (detectors are independent; only the schedule changes).
pub(crate) const FANOUT_MIN_CHUNK_PACKETS: usize = 1024;

/// The end-to-end streaming MAWILab pipeline.
pub struct StreamingPipeline {
    config: PipelineConfig,
    detectors: Vec<Box<dyn Detector>>,
}

impl StreamingPipeline {
    /// Builds the pipeline with the paper's 12 standard detector
    /// configurations.
    pub fn new(config: PipelineConfig) -> Self {
        StreamingPipeline {
            config,
            detectors: standard_configurations(),
        }
    }

    /// Replaces the detector set (any batch [`Detector`] works — its
    /// incremental form is used).
    pub fn with_detectors(mut self, detectors: Vec<Box<dyn Detector>>) -> Self {
        self.detectors = detectors;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Drains the source twice and runs all four steps, at constant
    /// peak packet memory.
    pub fn run<S: PacketSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<StreamingReport, SourceError> {
        let meta = source.meta().clone();
        let mut stats = StreamStats::default();
        let mut pass1 = DrainStats::default();
        let mut pass2 = DrainStats::default();

        // Pass 1: incremental detection, parallel across configs via
        // the shared `mawilab-exec` fan-out (`observe_all`). The lent
        // chunk is shared read-only by every configuration worker for
        // the duration of one `observe_all` round — no per-chunk deep
        // copy, no `Arc`, and under a day-level outer fan-out the
        // exec nesting policy runs this pass inline instead of
        // stacking twelve extra threads per in-flight day.
        let t0 = Instant::now();
        let mut incs: Vec<Box<dyn IncrementalDetector>> =
            self.detectors.iter().map(|d| d.incremental()).collect();
        for inc in &mut incs {
            inc.begin(&meta);
        }
        while let Some(chunk) = source.next_chunk()? {
            pass1.chunks += 1;
            pass1.packets += chunk.packets.len() as u64;
            stats.peak_chunk_packets = stats.peak_chunk_packets.max(chunk.packets.len());
            let view = ChunkView::of_chunk(&meta, chunk);
            if chunk.packets.len() < FANOUT_MIN_CHUNK_PACKETS {
                for inc in &mut incs {
                    inc.observe(&view);
                }
            } else {
                observe_all(&mut incs, &view);
            }
        }
        let alarms = finish_all(&mut incs);
        drop(incs);
        let detect = t0.elapsed();

        // Pass 2: traffic extraction + labeling evidence.
        let t1 = Instant::now();
        source.rewind()?;
        let mut index = ItemIndex::new(self.config.granularity);
        let mut evidence = CommunityEvidence::new(self.config.granularity);
        let traffic = {
            let mut extractor = StreamingExtractor::new(&alarms);
            let mut ids: Vec<u32> = Vec::new();
            while let Some(chunk) = source.next_chunk()? {
                pass2.chunks += 1;
                pass2.packets += chunk.packets.len() as u64;
                index.ids_of(&chunk.packets, &mut ids);
                let matched = extractor.observe(chunk.window, &chunk.packets, &ids);
                evidence.observe(&chunk.packets, &ids, matched);
            }
            extractor.into_traffic()
        };
        stats.items = index.item_count();
        // The alarms came from pass 1, the traffic ids from pass 2: if
        // the rewound source replayed a different stream, the two no
        // longer describe the same packets and every downstream label
        // would be silently wrong. Fail loudly instead.
        if pass2 != pass1 {
            return Err(SourceError::ReplayDiverged {
                pass1_chunks: pass1.chunks,
                pass1_packets: pass1.packets,
                pass2_chunks: pass2.chunks,
                pass2_packets: pass2.packets,
            });
        }
        stats.drains = vec![pass1, pass2];
        let extract = t1.elapsed();

        // Steps 2–4 on the accumulated state: unchanged batch code.
        let (communities, mining) = self
            .config
            .estimator()
            .estimate_from_traffic_timed(alarms, traffic);

        let t2 = Instant::now();
        let votes = VoteTable::from_communities(&communities);
        let decisions = self.config.strategy.build().classify(&votes);
        let confidences = label_confidences(&votes, &decisions, self.config.confidence_thresholds);
        let combine = t2.elapsed();

        let t3 = Instant::now();
        let labeled = LabeledReport {
            communities: label_communities_streaming(
                meta.window(),
                &index,
                &evidence,
                &communities,
                &decisions,
                &confidences,
                self.config.min_support,
            ),
        };
        let label = t3.elapsed();

        Ok(StreamingReport {
            communities,
            votes,
            decisions,
            labeled,
            timings: PipelineTimings {
                detect,
                extract,
                graph: mining.graph,
                louvain: mining.louvain,
                combine,
                label,
            },
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MawilabPipeline;
    use mawilab_label::MawilabLabel;
    use mawilab_model::{TraceChunker, DEFAULT_CHUNK_US};
    use mawilab_synth::{SynthConfig, TraceGenerator};

    fn small_trace() -> mawilab_synth::LabeledTrace {
        TraceGenerator::new(SynthConfig::default().with_seed(99)).generate()
    }

    #[test]
    fn streaming_report_is_consistent() {
        let lt = small_trace();
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let report = StreamingPipeline::new(PipelineConfig::default())
            .run(&mut source)
            .unwrap();
        assert!(report.alarm_count() > 0);
        assert!(report.community_count() > 0);
        assert_eq!(report.decisions.len(), report.community_count());
        assert_eq!(report.labeled.communities.len(), report.community_count());
        assert_eq!(report.stats.packets(), lt.trace.len() as u64);
        assert!(report.stats.chunks() > 1, "expected a multi-chunk stream");
        assert!(report.stats.peak_chunk_packets < lt.trace.len());
        assert_eq!(report.stats.passes(), 2, "two-pass path drains twice");
        assert_eq!(report.stats.drains[1], report.stats.drains[0]);
        assert_eq!(
            report.stats.packets_drained(),
            2 * lt.trace.len() as u64,
            "two-pass ingest cost is 2x the stream"
        );
        assert_eq!(report.stats.horizon_lag_us, None);
    }

    /// A source that drops its trailing chunks after the rewind —
    /// the silent-divergence failure the pipeline must reject.
    struct TruncatingReplay {
        inner: TraceChunker,
        pass: usize,
        served: usize,
        pass2_limit: usize,
    }

    impl mawilab_model::PacketSource for TruncatingReplay {
        fn meta(&self) -> &mawilab_model::TraceMeta {
            self.inner.meta()
        }

        fn bin_us(&self) -> u64 {
            self.inner.bin_us()
        }

        fn next_chunk(
            &mut self,
        ) -> Result<Option<&mawilab_model::PacketChunk>, mawilab_model::SourceError> {
            if self.pass > 0 && self.served >= self.pass2_limit {
                return Ok(None);
            }
            self.served += 1;
            self.inner.next_chunk()
        }

        fn rewind(&mut self) -> Result<(), mawilab_model::SourceError> {
            self.pass += 1;
            self.served = 0;
            self.inner.rewind()
        }
    }

    #[test]
    fn diverging_replay_is_an_error_not_wrong_labels() {
        let lt = small_trace();
        let mut source = TruncatingReplay {
            inner: TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US),
            pass: 0,
            served: 0,
            pass2_limit: 3,
        };
        let err = StreamingPipeline::new(PipelineConfig::default())
            .run(&mut source)
            .expect_err("truncated replay must fail");
        match err {
            mawilab_model::SourceError::ReplayDiverged {
                pass1_chunks,
                pass2_chunks,
                pass1_packets,
                pass2_packets,
            } => {
                assert!(pass1_chunks > pass2_chunks);
                assert_eq!(pass2_chunks, 3);
                assert!(pass1_packets > pass2_packets);
            }
            other => panic!("expected ReplayDiverged, got {other}"),
        }
    }

    #[test]
    fn streaming_matches_batch_pipeline() {
        let lt = small_trace();
        let config = PipelineConfig::default();
        let batch = MawilabPipeline::new(config.clone()).run(&lt.trace);
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let streamed = StreamingPipeline::new(config).run(&mut source).unwrap();
        assert_eq!(streamed.communities.alarms, batch.communities.alarms);
        assert_eq!(streamed.communities.traffic, batch.communities.traffic);
        assert_eq!(streamed.votes, batch.votes);
        assert_eq!(streamed.decisions, batch.decisions);
        let labels: Vec<MawilabLabel> = streamed
            .labeled
            .communities
            .iter()
            .map(|c| c.label)
            .collect();
        let batch_labels: Vec<MawilabLabel> =
            batch.labeled.communities.iter().map(|c| c.label).collect();
        assert_eq!(labels, batch_labels);
    }

    #[test]
    fn empty_stream_is_handled() {
        let meta = mawilab_model::TraceMeta::standard(mawilab_model::TraceDate::new(2004, 6, 2));
        let trace = mawilab_model::Trace::new(meta, vec![]);
        let mut source = TraceChunker::new(trace, DEFAULT_CHUNK_US);
        let report = StreamingPipeline::new(PipelineConfig::default())
            .run(&mut source)
            .unwrap();
        assert_eq!(report.alarm_count(), 0);
        assert_eq!(report.community_count(), 0);
        assert_eq!(report.stats.chunks(), 0);
    }
}
