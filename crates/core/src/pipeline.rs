//! The four-step MAWILab pipeline.

use mawilab_combiner::{
    label_confidences, Average, CombinationStrategy, ConfidenceThresholds, Decision, MajorityVote,
    Maximum, Minimum, Scann, VoteTable,
};
use mawilab_detectors::{run_all, standard_configurations, Detector, TraceView};
use mawilab_label::{label_communities, LabeledCommunity, MawilabLabel};
use mawilab_model::{FlowTable, Granularity, Trace};
use mawilab_similarity::{
    extract_traffic, AlarmCommunities, SimilarityEstimator, SimilarityMeasure,
};
use std::time::{Duration, Instant};

/// Which combination strategy step 3 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Mean confidence > 0.5.
    Average,
    /// Min confidence > 0.5.
    Minimum,
    /// Max confidence > 0.5.
    Maximum,
    /// Correspondence-analysis SCANN — the paper's pick (§5).
    #[default]
    Scann,
    /// Raw majority of configurations (baseline, §2.2.1).
    Majority,
}

impl StrategyKind {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Average,
        StrategyKind::Minimum,
        StrategyKind::Maximum,
        StrategyKind::Scann,
        StrategyKind::Majority,
    ];

    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn CombinationStrategy> {
        match self {
            StrategyKind::Average => Box::new(Average),
            StrategyKind::Minimum => Box::new(Minimum),
            StrategyKind::Maximum => Box::new(Maximum),
            StrategyKind::Scann => Box::new(Scann::default()),
            StrategyKind::Majority => Box::new(MajorityVote),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Average => "average",
            StrategyKind::Minimum => "minimum",
            StrategyKind::Maximum => "maximum",
            StrategyKind::Scann => "SCANN",
            StrategyKind::Majority => "majority",
        }
    }
}

/// Pipeline configuration. The default matches the paper's released
/// settings: uniflow granularity, Simpson similarity, SCANN
/// combination, 20% rule support, no edge pruning, classical
/// modularity.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Traffic granularity for the similarity estimator.
    pub granularity: Granularity,
    /// Edge-weight measure of the similarity graph.
    pub measure: SimilarityMeasure,
    /// Similarity-graph edges at or below this weight are dropped
    /// (0.0 = keep every intersecting pair, the paper's setting).
    pub min_similarity: f64,
    /// Louvain resolution (1.0 = classical modularity).
    pub resolution: f64,
    /// Combination strategy.
    pub strategy: StrategyKind,
    /// Apriori support threshold for community summaries (paper:
    /// 0.2).
    pub min_support: f64,
    /// Dual confidence thresholds for the abstention tier. `None`
    /// (the default) keeps the tier bound to the hard decision —
    /// output is byte-identical to the pre-confidence pipeline.
    pub confidence_thresholds: Option<ConfidenceThresholds>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            granularity: Granularity::Uniflow,
            measure: SimilarityMeasure::Simpson,
            min_similarity: 0.0,
            resolution: 1.0,
            strategy: StrategyKind::Scann,
            min_support: 0.2,
            confidence_thresholds: None,
        }
    }
}

impl PipelineConfig {
    /// The similarity estimator this configuration describes — the
    /// single place the pipeline's four estimator knobs are wired
    /// through, shared by the batch and streaming pipelines.
    pub fn estimator(&self) -> SimilarityEstimator {
        SimilarityEstimator {
            granularity: self.granularity,
            measure: self.measure,
            min_similarity: self.min_similarity,
            resolution: self.resolution,
        }
    }
}

/// Wall-clock cost of each pipeline stage (§6 discusses runtime).
/// Step 2 is broken out into its three phases — extraction, graph
/// build, Louvain — since it is the stage the paper names as the
/// bottleneck and the one the sharded engine attacks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTimings {
    /// Detector execution (all configurations, parallel).
    pub detect: Duration,
    /// Traffic extraction (batch: per-alarm scan; streaming: pass 2
    /// drain).
    pub extract: Duration,
    /// Sharded similarity-graph construction.
    pub graph: Duration,
    /// Louvain community mining.
    pub louvain: Duration,
    /// Vote table + combination strategy.
    pub combine: Duration,
    /// Heuristics + Apriori summaries + taxonomy.
    pub label: Duration,
}

impl PipelineTimings {
    /// Step-2 total: traffic extraction + graph + Louvain (the old
    /// single `estimate` figure).
    pub fn estimate(&self) -> Duration {
        self.extract + self.graph + self.louvain
    }

    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.detect + self.estimate() + self.combine + self.label
    }
}

/// The labeled output of one trace.
#[derive(Debug, Clone)]
pub struct LabeledReport {
    /// One labeled entry per community.
    pub communities: Vec<LabeledCommunity>,
}

impl LabeledReport {
    /// Communities labeled `Anomalous`.
    pub fn anomalies(&self) -> impl Iterator<Item = &LabeledCommunity> {
        self.communities
            .iter()
            .filter(|c| c.label == MawilabLabel::Anomalous)
    }

    /// Number of communities carrying `label`.
    pub fn count(&self, label: MawilabLabel) -> usize {
        self.communities.iter().filter(|c| c.label == label).count()
    }
}

/// Everything the pipeline produced for one trace.
#[derive(Debug)]
pub struct PipelineReport {
    /// Step-2 output: alarms, traffic sets, graph, partition.
    pub communities: AlarmCommunities,
    /// Step-3 input: the 12-configuration vote table.
    pub votes: VoteTable,
    /// Step-3 output: one decision per community.
    pub decisions: Vec<Decision>,
    /// Step-4 output: labeled communities.
    pub labeled: LabeledReport,
    /// Wall-clock accounting.
    pub timings: PipelineTimings,
}

impl PipelineReport {
    /// Total number of alarms the detectors raised.
    pub fn alarm_count(&self) -> usize {
        self.communities.alarms.len()
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.communities.community_count()
    }
}

/// The end-to-end MAWILab pipeline.
pub struct MawilabPipeline {
    config: PipelineConfig,
    detectors: Vec<Box<dyn Detector>>,
}

impl MawilabPipeline {
    /// Builds the pipeline with the paper's 12 standard detector
    /// configurations.
    pub fn new(config: PipelineConfig) -> Self {
        MawilabPipeline {
            config,
            detectors: standard_configurations(),
        }
    }

    /// Replaces the detector set (e.g. to ablate a family or add an
    /// emerging detector — §6 explicitly invites this).
    pub fn with_detectors(mut self, detectors: Vec<Box<dyn Detector>>) -> Self {
        self.detectors = detectors;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs all four steps on one trace.
    pub fn run(&self, trace: &Trace) -> PipelineReport {
        let flows = FlowTable::build(&trace.packets);
        let view = TraceView::new(trace, &flows);

        let t0 = Instant::now();
        let alarms = run_all(&self.detectors, &view);
        let detect = t0.elapsed();

        let t1 = Instant::now();
        let traffic = extract_traffic(&view, &alarms, self.config.granularity);
        let extract = t1.elapsed();
        let (communities, mining) = self
            .config
            .estimator()
            .estimate_from_traffic_timed(alarms, traffic);

        let t2 = Instant::now();
        let votes = VoteTable::from_communities(&communities);
        let decisions = self.config.strategy.build().classify(&votes);
        let confidences = label_confidences(&votes, &decisions, self.config.confidence_thresholds);
        let combine = t2.elapsed();

        let t3 = Instant::now();
        let labeled = LabeledReport {
            communities: label_communities(
                &view,
                &communities,
                &decisions,
                &confidences,
                self.config.min_support,
            ),
        };
        let label = t3.elapsed();

        PipelineReport {
            communities,
            votes,
            decisions,
            labeled,
            timings: PipelineTimings {
                detect,
                extract,
                graph: mining.graph,
                louvain: mining.louvain,
                combine,
                label,
            },
        }
    }

    /// Runs steps 1–2 once and classifies with *every* strategy —
    /// the comparison workload of the paper's §4.2.
    pub fn run_all_strategies(
        &self,
        trace: &Trace,
    ) -> (PipelineReport, Vec<(StrategyKind, Vec<Decision>)>) {
        let report = self.run(trace);
        let per_strategy = StrategyKind::ALL
            .iter()
            .map(|&k| (k, k.build().classify(&report.votes)))
            .collect();
        (report, per_strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_synth::{SynthConfig, TraceGenerator};

    fn small_trace() -> mawilab_synth::LabeledTrace {
        TraceGenerator::new(SynthConfig::default().with_seed(99)).generate()
    }

    #[test]
    fn pipeline_produces_consistent_report() {
        let lt = small_trace();
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        assert!(report.alarm_count() > 0, "no alarms");
        assert!(report.community_count() > 0);
        assert_eq!(report.decisions.len(), report.community_count());
        assert_eq!(report.labeled.communities.len(), report.community_count());
        assert!(report.timings.total() > Duration::ZERO);
    }

    #[test]
    fn anomalous_label_matches_accepted_decision() {
        let lt = small_trace();
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        for (c, d) in report.decisions.iter().enumerate() {
            let label = report.labeled.communities[c].label;
            if d.accepted {
                assert_eq!(label, MawilabLabel::Anomalous);
            } else {
                assert_ne!(label, MawilabLabel::Anomalous);
            }
        }
    }

    #[test]
    fn confidence_rides_along_with_every_label() {
        use mawilab_combiner::ConfidenceTier;
        let lt = small_trace();
        // Thresholds off: the tier IS the hard decision, never
        // Uncertain, and the score is a valid probability-like value.
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        for (c, lc) in report.labeled.communities.iter().enumerate() {
            assert!((0.0..=1.0).contains(&lc.confidence.score));
            let expect = if report.decisions[c].accepted {
                ConfidenceTier::Anomalous
            } else {
                ConfidenceTier::Benign
            };
            assert_eq!(lc.confidence.tier, expect);
        }
        // Thresholds on: same hard labels, same scores; only the tier
        // may move into the abstention band.
        let with = MawilabPipeline::new(PipelineConfig {
            confidence_thresholds: Some(ConfidenceThresholds::default()),
            ..PipelineConfig::default()
        })
        .run(&lt.trace);
        assert_eq!(with.decisions, report.decisions);
        for (a, b) in with
            .labeled
            .communities
            .iter()
            .zip(&report.labeled.communities)
        {
            assert_eq!(a.label, b.label);
            assert_eq!(a.confidence.score, b.confidence.score);
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let lt = small_trace();
        let p = MawilabPipeline::new(PipelineConfig::default());
        let a = p.run(&lt.trace);
        let b = p.run(&lt.trace);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.votes, b.votes);
        assert_eq!(
            a.labeled
                .communities
                .iter()
                .map(|c| c.label)
                .collect::<Vec<_>>(),
            b.labeled
                .communities
                .iter()
                .map(|c| c.label)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_strategies_classify_every_community() {
        let lt = small_trace();
        let (report, per_strategy) =
            MawilabPipeline::new(PipelineConfig::default()).run_all_strategies(&lt.trace);
        assert_eq!(per_strategy.len(), 5);
        for (kind, decisions) in &per_strategy {
            assert_eq!(
                decisions.len(),
                report.community_count(),
                "strategy {} skipped communities",
                kind.name()
            );
        }
        // Nesting sanity: minimum ⊆ average ⊆ maximum accepted sets.
        let get = |k: StrategyKind| {
            per_strategy
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|(_, d)| d.clone())
                .unwrap()
        };
        let (mins, avgs, maxs) = (
            get(StrategyKind::Minimum),
            get(StrategyKind::Average),
            get(StrategyKind::Maximum),
        );
        for c in 0..report.community_count() {
            if mins[c].accepted {
                assert!(avgs[c].accepted);
            }
            if avgs[c].accepted {
                assert!(maxs[c].accepted);
            }
        }
    }

    #[test]
    fn strategy_kinds_build_and_name() {
        for k in StrategyKind::ALL {
            let s = k.build();
            assert_eq!(s.name(), k.name());
        }
    }

    #[test]
    fn empty_trace_is_handled() {
        let meta = mawilab_model::TraceMeta::standard(mawilab_model::TraceDate::new(2004, 6, 2));
        let trace = Trace::new(meta, vec![]);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&trace);
        assert_eq!(report.alarm_count(), 0);
        assert_eq!(report.community_count(), 0);
        assert!(report.labeled.communities.is_empty());
    }

    #[test]
    fn custom_detector_set_is_respected() {
        use mawilab_detectors::{KlDetector, Tuning};
        let lt = small_trace();
        let pipeline = MawilabPipeline::new(PipelineConfig::default())
            .with_detectors(vec![Box::new(KlDetector::new(Tuning::Sensitive))]);
        let report = pipeline.run(&lt.trace);
        assert!(report
            .communities
            .alarms
            .iter()
            .all(|a| a.detector == mawilab_detectors::DetectorKind::Kl));
    }
}
