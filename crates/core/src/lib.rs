//! # mawilab-core
//!
//! End-to-end orchestration of the MAWILab methodology — the four
//! steps of the paper's proposed method, wired together:
//!
//! 1. run every detector configuration over the trace
//!    (`mawilab-detectors`),
//! 2. cluster the alarms into communities with the similarity
//!    estimator (`mawilab-similarity`),
//! 3. classify each community accepted/rejected with a combination
//!    strategy (`mawilab-combiner`),
//! 4. label the trace: taxonomy labels, Table-1 heuristics, and
//!    association-rule summaries (`mawilab-label`).
//!
//! [`MawilabPipeline`] is the main entry point; [`OnlinePipeline`]
//! is its single-pass streaming form (one drain, labels emitted per
//! horizon window); [`benchmark`] hosts the downstream use-case the
//! database exists for — scoring a *new* detector's alarms against
//! the labels through the same similarity machinery (paper §5).

#![forbid(unsafe_code)]

pub mod benchmark;
pub mod online;
pub mod pipeline;
pub mod streaming;
pub mod warm;

pub use benchmark::{benchmark_alarms, BenchmarkResult};
pub use online::{OnlinePipeline, OnlineReport, DEFAULT_HORIZON_US, DEFAULT_LAG_US};
pub use pipeline::{
    LabeledReport, MawilabPipeline, PipelineConfig, PipelineReport, PipelineTimings, StrategyKind,
};
pub use streaming::{DrainStats, StreamStats, StreamingPipeline, StreamingReport};
pub use warm::WarmState;
