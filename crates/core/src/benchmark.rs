//! Benchmarking a detector against MAWILab labels.
//!
//! The database's purpose (paper §1, §5): researchers compare their
//! detector's alarms to the labels "by using a similarity estimator
//! like the one presented in this work". This module implements that
//! comparison: the candidate detector's alarms are resolved to
//! traffic sets, and each labeled community counts as *detected* when
//! some alarm overlaps its traffic with Simpson similarity at or
//! above `min_overlap`.
//!
//! Unlike the evaluation methodologies the paper criticises, this
//! yields a **false-negative count** — the labeled anomalies the
//! candidate missed.

use crate::pipeline::PipelineReport;
use mawilab_detectors::{Alarm, TraceView};
use mawilab_label::MawilabLabel;
use mawilab_similarity::extractor::intersection_size;
use mawilab_similarity::{extract_traffic, SimilarityMeasure};

/// Outcome of scoring a candidate detector against labeled traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkResult {
    /// Labeled `Anomalous` communities the candidate hit.
    pub detected: usize,
    /// Labeled `Anomalous` communities the candidate missed
    /// (false negatives — the metric §1 says evaluations omit).
    pub missed: usize,
    /// Candidate alarms overlapping some non-benign community.
    pub matched_alarms: usize,
    /// Candidate alarms overlapping nothing labeled (false-positive
    /// candidates).
    pub unmatched_alarms: usize,
}

impl BenchmarkResult {
    /// Recall over labeled anomalies.
    pub fn recall(&self) -> f64 {
        let total = self.detected + self.missed;
        if total == 0 {
            return 0.0;
        }
        self.detected as f64 / total as f64
    }

    /// Fraction of candidate alarms that matched labeled traffic.
    pub fn alarm_precision(&self) -> f64 {
        let total = self.matched_alarms + self.unmatched_alarms;
        if total == 0 {
            return 0.0;
        }
        self.matched_alarms as f64 / total as f64
    }
}

/// Scores candidate `alarms` against a labeled pipeline report.
///
/// `min_overlap` is the Simpson-similarity floor for a match (0.0
/// counts any intersection, mirroring the estimator's default).
pub fn benchmark_alarms(
    view: &TraceView<'_>,
    report: &PipelineReport,
    alarms: &[Alarm],
    min_overlap: f64,
) -> BenchmarkResult {
    let candidate_sets = extract_traffic(view, alarms, report.communities.granularity);
    let measure = SimilarityMeasure::Simpson;

    let mut detected = 0;
    let mut missed = 0;
    let mut community_matched = vec![false; report.community_count()];
    for lc in &report.labeled.communities {
        let traffic = report.communities.community_traffic(lc.community);
        let hit = candidate_sets.iter().any(|set| {
            let inter = intersection_size(set, &traffic);
            inter > 0 && measure.value(inter, set.len().max(1), traffic.len().max(1)) >= min_overlap
        });
        community_matched[lc.community] = hit;
        if lc.label == MawilabLabel::Anomalous {
            if hit {
                detected += 1;
            } else {
                missed += 1;
            }
        }
    }

    // Alarm-side accounting: an alarm matches when it overlaps any
    // labeled (non-benign by construction) community.
    let mut matched_alarms = 0;
    let mut unmatched_alarms = 0;
    for set in &candidate_sets {
        let hit = report.labeled.communities.iter().any(|lc| {
            let traffic = report.communities.community_traffic(lc.community);
            let inter = intersection_size(set, &traffic);
            inter > 0 && measure.value(inter, set.len().max(1), traffic.len().max(1)) >= min_overlap
        });
        if hit {
            matched_alarms += 1;
        } else {
            unmatched_alarms += 1;
        }
    }

    BenchmarkResult {
        detected,
        missed,
        matched_alarms,
        unmatched_alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MawilabPipeline, PipelineConfig};
    use mawilab_detectors::{Detector, KlDetector, Tuning};
    use mawilab_model::FlowTable;
    use mawilab_synth::{SynthConfig, TraceGenerator};

    #[test]
    fn pipeline_detectors_score_perfectly_against_their_own_labels() {
        // Benchmarking the full 12-config ensemble against the labels
        // it produced must find every anomalous community.
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(31)).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        let alarms = report.communities.alarms.clone();
        let result = benchmark_alarms(&view, &report, &alarms, 0.0);
        assert_eq!(result.missed, 0, "ensemble missed its own labels");
        if result.detected + result.missed > 0 {
            assert_eq!(result.recall(), 1.0);
        }
    }

    #[test]
    fn single_detector_has_false_negatives() {
        // The headline claim: a single detector misses labeled
        // anomalies the ensemble found.
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(32)).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        let kl_alarms = KlDetector::new(Tuning::Optimal).analyze(&view);
        let result = benchmark_alarms(&view, &report, &kl_alarms, 0.0);
        let anomalous = report.labeled.count(mawilab_label::MawilabLabel::Anomalous);
        assert_eq!(result.detected + result.missed, anomalous);
        assert!(result.recall() <= 1.0);
    }

    #[test]
    fn empty_candidate_misses_everything() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(33)).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        let result = benchmark_alarms(&view, &report, &[], 0.0);
        assert_eq!(result.detected, 0);
        assert_eq!(result.matched_alarms, 0);
        assert_eq!(result.recall(), 0.0);
        assert_eq!(result.alarm_precision(), 0.0);
    }

    #[test]
    fn stricter_overlap_cannot_increase_detection() {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(34)).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        let alarms = KlDetector::new(Tuning::Sensitive).analyze(&view);
        let loose = benchmark_alarms(&view, &report, &alarms, 0.0);
        let strict = benchmark_alarms(&view, &report, &alarms, 0.5);
        assert!(strict.detected <= loose.detected);
        assert!(strict.matched_alarms <= loose.matched_alarms);
    }
}
