//! Day-over-day warm state for archive sweeps.
//!
//! The MAWILab service labels consecutive archive days of the *same*
//! link; consecutive days share detector baselines (the link's normal
//! traffic changes slowly) and recurring anomalies (a worm scanning
//! on day *k* usually still scans on day *k+1*). A cold sweep throws
//! that continuity away and re-estimates everything per day.
//! [`WarmState`] carries three things from day *k* into day *k+1*:
//!
//! 1. **Detector baselines** — each configuration's exported
//!    [`DetectorPrior`] (PCA energy statistics, Gamma fit
//!    trajectories, KL reference spreads), blended into the next
//!    day's estimates with exponential decay (see
//!    [`mawilab_detectors::warm`]);
//! 2. **Communities** — yesterday's Louvain partition, projected
//!    through alarm signatures onto today's alarms as a seed for
//!    [`louvain_seeded`](mawilab_graph::louvain_seeded);
//! 3. **Era bookkeeping** — all carried state resets when the
//!    [`LinkEra`] changes (the 2006-07-01 CAR→100 Mbps upgrade
//!    changes the link's normal traffic wholesale; yesterday's
//!    baselines describe a different link).
//!
//! `decay == 0.0` disables every carried influence: a warm sweep at
//! zero decay is byte-identical to the cold sweep, which
//! `tests/warm_equivalence.rs` pins and the archive bench's
//! `--verify-cold` flag re-checks end to end.

use mawilab_detectors::{Alarm, DetectorPrior};
use mawilab_model::{LinkEra, TraceDate};
use mawilab_similarity::{AlarmCommunities, Partition};
use std::collections::{BTreeMap, BTreeSet};

/// Signature under which an alarm is matched day-over-day: raising
/// configuration plus traffic scope, *excluding* the time window
/// (the same anomaly recurs at different times each day).
fn alarm_signature(alarm: &Alarm) -> String {
    format!("{}/{}/{}", alarm.detector, alarm.tuning, alarm.scope)
}

/// Carried state of a warm archive sweep. One instance lives across
/// the whole sweep; the harness calls
/// [`OnlinePipeline::run_warm`](crate::OnlinePipeline::run_warm) with
/// it once per day, in date order.
#[derive(Debug, Clone)]
pub struct WarmState {
    decay: f64,
    /// The decay actually applied *today*: `decay^gap_days`, where
    /// the gap is the calendar distance to the previously begun day.
    /// A prior is an EWMA over *days*, not over *runs* — the curated
    /// archive sample jumps years between epochs, and a 2-year-old
    /// baseline must enter with weight `decay^730` (≈ 0, effectively
    /// cold), not `decay^1`.
    effective_decay: f64,
    era: Option<LinkEra>,
    /// The last date passed to [`begin_day`](Self::begin_day), for
    /// the calendar-gap computation.
    last_date: Option<TraceDate>,
    /// Detector baselines, keyed by configuration label
    /// (`"PCA/optimal"` …). A configuration that exports `None`
    /// (quiet day, no warm support) keeps its previous prior.
    priors: BTreeMap<String, DetectorPrior>,
    /// Yesterday's carry **slot** (= alarm index in yesterday's run)
    /// and community of each alarm signature.
    carry: BTreeMap<String, (u32, usize)>,
    days: u64,
    resets: u64,
    seeded_days: u64,
}

impl WarmState {
    /// Creates warm state with the given exponential decay
    /// `0.0 ≤ decay < 1.0`. A prior from `j` days ago enters today's
    /// baselines with weight `decay^j`; `0.0` makes every day an
    /// exact cold start.
    pub fn new(decay: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay),
            "decay must be in [0, 1), got {decay}"
        );
        WarmState {
            decay,
            effective_decay: decay,
            era: None,
            last_date: None,
            priors: BTreeMap::new(),
            carry: BTreeMap::new(),
            days: 0,
            resets: 0,
            seeded_days: 0,
        }
    }

    /// The configured per-day decay.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// The gap-compounded decay in effect for the current day:
    /// `decay^gap_days` against the previously begun day (= the
    /// configured decay on consecutive days and before the first
    /// [`begin_day`](Self::begin_day)).
    pub fn effective_decay(&self) -> f64 {
        self.effective_decay
    }

    /// Days absorbed so far.
    pub fn days(&self) -> u64 {
        self.days
    }

    /// Era-boundary resets performed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Days whose Louvain stage actually ran from a carried seed.
    pub fn seeded_days(&self) -> u64 {
        self.seeded_days
    }

    /// Number of alarm signatures currently carried.
    pub fn carried_signatures(&self) -> usize {
        self.carry.len()
    }

    /// Starts `date` in the given link era. Crossing an era boundary
    /// drops **all** carried state — the upgraded link's normal
    /// traffic invalidates the old baselines. The calendar distance
    /// to the previously begun day compounds the decay
    /// ([`effective_decay`](Self::effective_decay)): a multi-day gap
    /// is that many EWMA steps, so the curated sample's epoch jumps
    /// are effectively cold starts even without an era change.
    pub fn begin_day(&mut self, era: LinkEra, date: TraceDate) {
        if self.era.is_some_and(|prev| prev != era) {
            self.priors.clear();
            self.carry.clear();
            self.resets += 1;
        }
        self.era = Some(era);
        let gap_days = self
            .last_date
            .map(|last| (date.days_since_epoch() - last.days_since_epoch()).max(1))
            .unwrap_or(1);
        // powi(1) is exact, so consecutive days (and the first day)
        // keep the configured decay bit for bit — the warm sweep's
        // byte-identity contracts are untouched. decay^730 underflows
        // to 0.0 outright for archive-scale gaps.
        self.effective_decay = self.decay.powi(gap_days as i32);
        self.last_date = Some(date);
    }

    /// The carried prior for a configuration label, if any.
    pub fn prior_for(&self, label: &str) -> Option<&DetectorPrior> {
        self.priors.get(label)
    }

    /// Records a configuration's exported baseline. `None` (no warm
    /// support, or an empty day) keeps the previous prior so a quiet
    /// day does not forget the link.
    pub fn absorb_prior(&mut self, label: String, prior: Option<DetectorPrior>) {
        if let Some(p) = prior {
            self.priors.insert(label, p);
        }
    }

    /// Matches today's alarms against the carried identity table:
    /// `Some(slot)` for an alarm whose signature was raised yesterday,
    /// `None` for a new one. Each carry slot is used at most once
    /// (first occurrence wins), so a signature raised twice today has
    /// its second alarm treated as new — its pairs get rediscovered
    /// exactly instead of sharing a stale carried edge set.
    pub fn match_today(&self, alarms: &[Alarm]) -> Vec<Option<u32>> {
        let mut used: BTreeSet<u32> = BTreeSet::new();
        alarms
            .iter()
            .map(|alarm| {
                let (slot, _) = self.carry.get(&alarm_signature(alarm))?;
                used.insert(*slot).then_some(*slot)
            })
            .collect()
    }

    /// Projects yesterday's communities through a
    /// [`match_today`](Self::match_today) result as a Louvain seed:
    /// matched alarms start in their slot's carried community (densely
    /// renumbered, first-appearance order); unmatched alarms start as
    /// singletons. Returns `None` when there is nothing to seed from
    /// (zero decay or zero matches) — the caller then runs cold.
    pub fn seed_from(&mut self, matched: &[Option<u32>]) -> Option<Partition> {
        // Gate on the gap-compounded decay: when a calendar gap has
        // decayed the carried weight to nothing (decay^gap underflows
        // to 0.0), yesterday's communities are as stale as its priors
        // and Louvain runs cold.
        if self.effective_decay <= 0.0 || matched.iter().all(Option::is_none) {
            return None;
        }
        let communities: BTreeMap<u32, usize> =
            self.carry.values().map(|&(slot, c)| (slot, c)).collect();
        let mut remap: BTreeMap<usize, usize> = BTreeMap::new();
        let mut labels = Vec::with_capacity(matched.len());
        let mut next = 0usize;
        for m in matched {
            match m.and_then(|slot| communities.get(&slot)) {
                Some(&community) => {
                    let id = *remap.entry(community).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                    labels.push(id);
                }
                None => {
                    labels.push(next);
                    next += 1;
                }
            }
        }
        self.seeded_days += 1;
        Some(Partition::from_labels(labels))
    }

    /// [`match_today`](Self::match_today) +
    /// [`seed_from`](Self::seed_from) in one call, for callers that
    /// only want the Louvain seed.
    pub fn seed_for(&mut self, alarms: &[Alarm]) -> Option<Partition> {
        let matched = self.match_today(alarms);
        self.seed_from(&matched)
    }

    /// Absorbs a finished day's communities: the carry table becomes
    /// today's signature → (slot, community) map — slots are today's
    /// alarm indices. A signature raised twice keeps its first
    /// alarm's slot (matching
    /// [`match_today`](Self::match_today)'s first-occurrence rule).
    pub fn absorb_day(&mut self, communities: &AlarmCommunities) {
        self.days += 1;
        if self.decay <= 0.0 {
            return;
        }
        self.carry.clear();
        for (i, a) in communities.alarms.iter().enumerate() {
            self.carry
                .entry(alarm_signature(a))
                .or_insert((i as u32, communities.partition.of(i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_detectors::{AlarmScope, DetectorKind, KlPrior, Tuning};
    use mawilab_model::{TimeWindow, TraceDate};
    use std::net::Ipv4Addr;

    fn alarm(detector: DetectorKind, tuning: Tuning, host: u8) -> Alarm {
        Alarm {
            detector,
            tuning,
            window: TimeWindow::new(0, 1_000_000),
            scope: AlarmScope::SrcHost(Ipv4Addr::new(10, 0, 0, host)),
            score: 1.0,
        }
    }

    fn kl_prior() -> DetectorPrior {
        DetectorPrior::Kl(KlPrior {
            features: vec![(1.0, 0.5)],
        })
    }

    #[test]
    fn era_boundary_drops_all_carried_state() {
        let mut w = WarmState::new(0.5);
        let d = TraceDate::new(2006, 6, 30);
        w.begin_day(LinkEra::for_date(d), d);
        w.absorb_prior("KL/optimal".into(), Some(kl_prior()));
        w.carry.insert("x".into(), (0, 0));
        assert!(w.prior_for("KL/optimal").is_some());

        // Same era: state survives.
        w.begin_day(LinkEra::for_date(d), d);
        assert!(w.prior_for("KL/optimal").is_some());
        assert_eq!(w.resets(), 0);

        // 2006-07-01 upgrade: everything resets.
        let up = TraceDate::new(2006, 7, 1);
        w.begin_day(LinkEra::for_date(up), up);
        assert!(w.prior_for("KL/optimal").is_none());
        assert_eq!(w.carried_signatures(), 0);
        assert_eq!(w.resets(), 1);
    }

    #[test]
    fn calendar_gaps_compound_the_decay() {
        let mut w = WarmState::new(0.5);
        assert_eq!(w.effective_decay(), 0.5, "pre-sweep default is 1 step");

        // First day, then the consecutive day: exactly one EWMA step.
        let d0 = TraceDate::new(2006, 6, 28);
        w.begin_day(LinkEra::for_date(d0), d0);
        assert_eq!(w.effective_decay(), 0.5);
        let d1 = d0.plus_days(1);
        w.begin_day(LinkEra::for_date(d1), d1);
        assert_eq!(w.effective_decay(), 0.5);

        // A 3-day gap is three steps.
        let d4 = d1.plus_days(3);
        w.begin_day(LinkEra::for_date(d4), d4);
        assert_eq!(w.effective_decay(), 0.125);

        // A 2-year epoch jump underflows to exactly 0: effectively a
        // cold start, and the Louvain seed is gated off with it.
        let mut jump = WarmState::new(0.15);
        let a = TraceDate::new(2004, 5, 10);
        jump.begin_day(LinkEra::for_date(a), a);
        jump.carry.insert(
            alarm_signature(&alarm(DetectorKind::Pca, Tuning::Optimal, 1)),
            (0, 0),
        );
        let b = TraceDate::new(2006, 6, 1);
        jump.begin_day(LinkEra::for_date(b), b);
        assert_eq!(
            jump.effective_decay(),
            0.0,
            "a 2-year gap's decay^gap must underflow to exactly 0"
        );
        assert!(
            jump.seed_for(&[alarm(DetectorKind::Pca, Tuning::Optimal, 1)])
                .is_none(),
            "a fully decayed carry must not seed Louvain"
        );
        assert_eq!(jump.decay(), 0.15, "the configured decay is untouched");
    }

    #[test]
    fn zero_decay_never_seeds() {
        let mut w = WarmState::new(0.0);
        w.carry.insert(
            alarm_signature(&alarm(DetectorKind::Pca, Tuning::Optimal, 1)),
            (0, 0),
        );
        let alarms = vec![alarm(DetectorKind::Pca, Tuning::Optimal, 1)];
        assert!(w.seed_for(&alarms).is_none());
    }

    #[test]
    fn seed_projects_carried_communities_and_isolates_new_alarms() {
        let mut w = WarmState::new(0.5);
        let a = alarm(DetectorKind::Pca, Tuning::Optimal, 1);
        let b = alarm(DetectorKind::Gamma, Tuning::Sensitive, 2);
        let c = alarm(DetectorKind::Kl, Tuning::Conservative, 3);
        // Yesterday: a and b shared community 7, c unseen.
        w.carry.insert(alarm_signature(&a), (0, 7));
        w.carry.insert(alarm_signature(&b), (1, 7));
        let seed = w.seed_for(&[c.clone(), a.clone(), b.clone()]).unwrap();
        // c is a fresh singleton; a and b share a seeded community.
        assert_eq!(seed.of(1), seed.of(2));
        assert_ne!(seed.of(0), seed.of(1));
        assert_eq!(seed.community_count(), 2);
        assert_eq!(w.seeded_days(), 1);

        // No signature overlap → no seed at all.
        let d = alarm(DetectorKind::Hough, Tuning::Optimal, 4);
        assert!(w.seed_for(&[d]).is_none());
    }

    #[test]
    fn absorb_prior_keeps_previous_on_none() {
        let mut w = WarmState::new(0.25);
        w.absorb_prior("KL/optimal".into(), Some(kl_prior()));
        w.absorb_prior("KL/optimal".into(), None);
        assert_eq!(w.prior_for("KL/optimal"), Some(&kl_prior()));
    }
}
