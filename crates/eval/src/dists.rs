//! Distribution series for the figures: PDFs (normalised histograms)
//! and empirical CDFs, in gnuplot-ready `(x, y)` form.

/// Normalised-histogram PDF of `values` over `[lo, hi]` with `bins`
/// cells: returns `(bin centre, density)` so the area integrates to 1.
/// Values outside the range are clamped into the edge bins, mirroring
/// how the paper's bounded metrics (ratios in `[0,1]`) behave.
pub fn pdf_histogram(values: &[f64], bins: usize, lo: f64, hi: f64) -> Vec<(f64, f64)> {
    assert!(bins >= 1, "need at least one bin");
    assert!(hi > lo, "empty range");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    let n = values.len().max(1) as f64;
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (lo + (i as f64 + 0.5) * width, c as f64 / n / width))
        .collect()
}

/// Empirical CDF: sorted `(value, P(X ≤ value))` points, one per
/// sample.
pub fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Probability mass over small non-negative integer outcomes, e.g.
/// the rule-degree distribution of Fig. 3(d): returns `pmf[k]` for
/// `k in 0..=max`.
pub fn discrete_pmf(values: &[u32], max: u32) -> Vec<f64> {
    let mut counts = vec![0usize; max as usize + 1];
    for &v in values {
        counts[(v.min(max)) as usize] += 1;
    }
    let n = values.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_integrates_to_one() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 100.0).collect();
        let pdf = pdf_histogram(&values, 20, 0.0, 1.0);
        let area: f64 = pdf.iter().map(|&(_, d)| d * 0.05).sum();
        assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_clamps_outliers_into_edges() {
        let pdf = pdf_histogram(&[-5.0, 0.5, 99.0], 2, 0.0, 1.0);
        // All three samples land somewhere; total mass 1.
        let area: f64 = pdf.iter().map(|&(_, d)| d * 0.5).sum();
        assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdf_of_empty_is_zero() {
        let pdf = pdf_histogram(&[], 4, 0.0, 1.0);
        assert!(pdf.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    fn cdf_is_monotone_ending_at_one() {
        let values = [3.0, 1.0, 2.0, 2.0];
        let cdf = cdf_points(&values);
        assert_eq!(cdf.len(), 4);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf[0], (1.0, 0.25));
    }

    #[test]
    fn pmf_sums_to_one_and_clamps() {
        let pmf = discrete_pmf(&[0, 1, 1, 4, 9], 4);
        assert_eq!(pmf.len(), 5);
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(pmf[4], 0.4); // the 9 clamps into 4
        assert_eq!(pmf[1], 0.4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        pdf_histogram(&[1.0], 4, 1.0, 0.0);
    }
}
