//! The Condorcet jury theorem (paper §2.2.1).
//!
//! The paper motivates detector combination with the classical
//! majority-vote analysis: with `L` independent detectors of
//! individual accuracy `p`,
//!
//! ```text
//! P_maj(L) = Σ_{m=⌊L/2⌋+1}^{L} C(L,m) p^m (1−p)^{L−m}
//! ```
//!
//! is monotonically increasing in `L` when `p > 0.5` (→ 1), decreasing
//! when `p < 0.5` (→ 0), and constant ½ at `p = ½`. The `condorcet`
//! bench binary regenerates this curve; the tests below pin the
//! theorem's statements.

/// Binomial coefficient in `f64` (accurate for the small `L` used
/// here).
fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Probability that a majority of `l` independent detectors with
/// accuracy `p` decides correctly — the paper's `P_maj(L)`.
///
/// # Panics
/// Panics unless `p ∈ [0,1]` and `l ≥ 1`.
pub fn majority_accuracy(l: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "accuracy outside [0,1]");
    assert!(l >= 1, "need at least one detector");
    let from = l / 2 + 1;
    (from..=l)
        .map(|m| binomial(l, m) * p.powi(m as i32) * (1.0 - p).powi((l - m) as i32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials_match_pascal() {
        assert_eq!(binomial(5, 0), 1.0);
        assert!((binomial(5, 2) - 10.0).abs() < 1e-9);
        assert!((binomial(12, 6) - 924.0).abs() < 1e-9);
        assert_eq!(binomial(3, 7), 0.0);
    }

    #[test]
    fn single_detector_is_its_own_accuracy() {
        for p in [0.1, 0.5, 0.9] {
            assert!((majority_accuracy(1, p) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn good_detectors_improve_with_l() {
        let p = 0.7;
        let mut prev = 0.0;
        for l in [1u64, 3, 5, 7, 9, 21, 51] {
            let cur = majority_accuracy(l, p);
            assert!(cur > prev, "P_maj not increasing at L={l}");
            prev = cur;
        }
        assert!(majority_accuracy(101, p) > 0.999);
    }

    #[test]
    fn bad_detectors_degrade_with_l() {
        let p = 0.3;
        let mut prev = 1.0;
        for l in [1u64, 3, 5, 9, 21, 51] {
            let cur = majority_accuracy(l, p);
            assert!(cur < prev, "P_maj not decreasing at L={l}");
            prev = cur;
        }
        assert!(majority_accuracy(101, p) < 0.001);
    }

    #[test]
    fn coin_flippers_stay_at_half() {
        for l in [1u64, 3, 5, 9, 33] {
            // Odd L avoids the tie case the theorem states it for.
            assert!((majority_accuracy(l, 0.5) - 0.5).abs() < 1e-12, "L={l}");
        }
    }

    #[test]
    fn perfect_and_broken_detectors_are_fixed_points() {
        assert_eq!(majority_accuracy(7, 1.0), 1.0);
        assert_eq!(majority_accuracy(7, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_probability_panics() {
        majority_accuracy(3, 1.5);
    }
}
