//! Table 2: gains and losses of a combination strategy.
//!
//! For rejected communities, the *gain* is rejecting non-attacks
//! (Special/Unknown) and the *cost* is rejecting attacks; for
//! accepted communities the gain is accepting attacks and the cost is
//! accepting non-attacks. Fig. 8 tracks these quantities over nine
//! years, highlighting one detector per panel.

use mawilab_combiner::Decision;
use mawilab_detectors::DetectorKind;
use mawilab_label::{HeuristicCategory, LabeledCommunity};
use mawilab_similarity::AlarmCommunities;

/// The four Table-2 quantities, in community counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GainCost {
    /// Accepted ∧ Attack.
    pub gain_acc: usize,
    /// Accepted ∧ Special/Unknown.
    pub cost_acc: usize,
    /// Rejected ∧ Special/Unknown.
    pub gain_rej: usize,
    /// Rejected ∧ Attack.
    pub cost_rej: usize,
}

impl GainCost {
    /// Total communities counted.
    pub fn total(&self) -> usize {
        self.gain_acc + self.cost_acc + self.gain_rej + self.cost_rej
    }
}

/// Computes Table 2 over all communities, or — when `detector` is
/// given — over the communities containing at least one alarm of that
/// detector (the per-detector curves of Fig. 8).
pub fn gain_cost(
    communities: &AlarmCommunities,
    labeled: &[LabeledCommunity],
    decisions: &[Decision],
    detector: Option<DetectorKind>,
) -> GainCost {
    assert_eq!(labeled.len(), decisions.len(), "decision/label mismatch");
    let mut out = GainCost::default();
    for (lc, d) in labeled.iter().zip(decisions) {
        if let Some(kind) = detector {
            if !communities.detectors_in(lc.community).contains(&kind) {
                continue;
            }
        }
        let attack = lc.heuristic.category() == HeuristicCategory::Attack;
        match (d.accepted, attack) {
            (true, true) => out.gain_acc += 1,
            (true, false) => out.cost_acc += 1,
            (false, false) => out.gain_rej += 1,
            (false, true) => out.cost_rej += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_combiner::Decision;
    use mawilab_detectors::{Alarm, AlarmScope, Tuning};
    use mawilab_graph::Partition;
    use mawilab_label::{CommunitySummary, HeuristicLabel, MawilabLabel};
    use mawilab_model::{Granularity, TimeWindow};
    use std::net::Ipv4Addr;

    fn alarm(d: DetectorKind) -> Alarm {
        Alarm {
            detector: d,
            tuning: Tuning::Optimal,
            window: TimeWindow::new(0, 1),
            scope: AlarmScope::SrcHost(Ipv4Addr::new(1, 1, 1, 1)),
            score: 1.0,
        }
    }

    /// Two communities: c0 = {Gamma, KL alarms}, c1 = {Hough alarm}.
    fn communities() -> AlarmCommunities {
        let alarms = vec![
            alarm(DetectorKind::Gamma),
            alarm(DetectorKind::Kl),
            alarm(DetectorKind::Hough),
        ];
        let est = mawilab_similarity::SimilarityEstimator::default();
        let traffic = vec![vec![1, 2], vec![1, 2], vec![9]];
        let graph = est.build_graph(&traffic);
        AlarmCommunities::new(
            alarms,
            traffic,
            graph,
            Partition::from_labels(vec![0, 0, 1]),
            Granularity::Uniflow,
        )
    }

    fn lc(community: usize, heuristic: HeuristicLabel) -> LabeledCommunity {
        LabeledCommunity {
            community,
            label: MawilabLabel::Anomalous,
            confidence: mawilab_combiner::LabelConfidence {
                score: 1.0,
                tier: mawilab_combiner::ConfidenceTier::Anomalous,
            },
            heuristic,
            summary: CommunitySummary {
                community,
                rules: vec![],
                rule_degree: 0.0,
                rule_support: 0.0,
                transactions: 0,
            },
            window: TimeWindow::new(0, 1),
            alarms: 1,
            detectors: 1,
        }
    }

    #[test]
    fn quadrants_are_counted() {
        let comms = communities();
        let labeled = vec![lc(0, HeuristicLabel::Smb), lc(1, HeuristicLabel::Unknown)];
        let decisions = vec![Decision::new(true), Decision::new(false)];
        let gc = gain_cost(&comms, &labeled, &decisions, None);
        assert_eq!(
            gc,
            GainCost {
                gain_acc: 1,
                cost_acc: 0,
                gain_rej: 1,
                cost_rej: 0
            }
        );
        assert_eq!(gc.total(), 2);
    }

    #[test]
    fn per_detector_filters_membership() {
        let comms = communities();
        let labeled = vec![lc(0, HeuristicLabel::Smb), lc(1, HeuristicLabel::Unknown)];
        let decisions = vec![Decision::new(false), Decision::new(false)];
        // Gamma participates only in community 0 (Attack, rejected).
        let gamma = gain_cost(&comms, &labeled, &decisions, Some(DetectorKind::Gamma));
        assert_eq!(
            gamma,
            GainCost {
                gain_acc: 0,
                cost_acc: 0,
                gain_rej: 0,
                cost_rej: 1
            }
        );
        // Hough only in community 1 (Unknown, rejected).
        let hough = gain_cost(&comms, &labeled, &decisions, Some(DetectorKind::Hough));
        assert_eq!(
            hough,
            GainCost {
                gain_acc: 0,
                cost_acc: 0,
                gain_rej: 1,
                cost_rej: 0
            }
        );
        // PCA participates nowhere.
        let pca = gain_cost(&comms, &labeled, &decisions, Some(DetectorKind::Pca));
        assert_eq!(pca.total(), 0);
    }

    #[test]
    fn all_four_quadrants_fill() {
        let comms = communities();
        // Duplicate labels to produce all cases over two communities
        // by varying decisions.
        let labeled = vec![lc(0, HeuristicLabel::Smb), lc(1, HeuristicLabel::Http)];
        let d1 = vec![Decision::new(true), Decision::new(true)];
        let gc1 = gain_cost(&comms, &labeled, &d1, None);
        assert_eq!((gc1.gain_acc, gc1.cost_acc), (1, 1));
        let d2 = vec![Decision::new(false), Decision::new(false)];
        let gc2 = gain_cost(&comms, &labeled, &d2, None);
        assert_eq!((gc2.gain_rej, gc2.cost_rej), (1, 1));
    }
}
