//! Attack ratios (paper §4.2.1).
//!
//! Lacking ground truth, the paper referees combination strategies by
//! the Table-1 heuristics: a good strategy *accepts* a high fraction
//! of `Attack`-labeled communities and *rejects* a low fraction. The
//! attack ratio of a community class is `#Attack / #total` within the
//! class.

use mawilab_combiner::Decision;
use mawilab_detectors::DetectorKind;
use mawilab_label::{HeuristicCategory, LabeledCommunity};
use mawilab_similarity::AlarmCommunities;

/// Attack ratios of the accepted and rejected classes for one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRatios {
    /// `#accepted ∧ Attack / #accepted` (`None` when nothing was
    /// accepted).
    pub accepted: Option<f64>,
    /// `#rejected ∧ Attack / #rejected`.
    pub rejected: Option<f64>,
    /// Number of accepted communities.
    pub n_accepted: usize,
    /// Number of rejected communities.
    pub n_rejected: usize,
}

/// Computes the accepted/rejected attack ratios of one classified
/// trace. `labeled[i]` must describe community `i` and `decisions[i]`
/// its decision.
pub fn attack_ratio_by_class(labeled: &[LabeledCommunity], decisions: &[Decision]) -> AttackRatios {
    assert_eq!(labeled.len(), decisions.len(), "decision/label mismatch");
    let mut acc = (0usize, 0usize); // (attack, total)
    let mut rej = (0usize, 0usize);
    for (lc, d) in labeled.iter().zip(decisions) {
        let slot = if d.accepted { &mut acc } else { &mut rej };
        slot.1 += 1;
        if lc.heuristic.category() == HeuristicCategory::Attack {
            slot.0 += 1;
        }
    }
    AttackRatios {
        accepted: (acc.1 > 0).then(|| acc.0 as f64 / acc.1 as f64),
        rejected: (rej.1 > 0).then(|| rej.0 as f64 / rej.1 as f64),
        n_accepted: acc.1,
        n_rejected: rej.1,
    }
}

/// Attack ratio of the communities a given detector participates in
/// (Fig. 6(c)): `#(communities with a d-alarm ∧ Attack) /
/// #(communities with a d-alarm)`.
pub fn detector_attack_ratio(
    communities: &AlarmCommunities,
    labeled: &[LabeledCommunity],
    detector: DetectorKind,
) -> Option<f64> {
    let mut attack = 0usize;
    let mut total = 0usize;
    for lc in labeled {
        if communities.detectors_in(lc.community).contains(&detector) {
            total += 1;
            if lc.heuristic.category() == HeuristicCategory::Attack {
                attack += 1;
            }
        }
    }
    (total > 0).then(|| attack as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_label::{CommunitySummary, HeuristicLabel, MawilabLabel};
    use mawilab_model::TimeWindow;

    fn lc(community: usize, heuristic: HeuristicLabel) -> LabeledCommunity {
        LabeledCommunity {
            community,
            label: MawilabLabel::Anomalous,
            confidence: mawilab_combiner::LabelConfidence {
                score: 1.0,
                tier: mawilab_combiner::ConfidenceTier::Anomalous,
            },
            heuristic,
            summary: CommunitySummary {
                community,
                rules: vec![],
                rule_degree: 0.0,
                rule_support: 0.0,
                transactions: 0,
            },
            window: TimeWindow::new(0, 1),
            alarms: 1,
            detectors: 1,
        }
    }

    fn dec(accepted: bool) -> Decision {
        Decision::new(accepted)
    }

    #[test]
    fn ratios_split_by_class() {
        let labeled = vec![
            lc(0, HeuristicLabel::Smb),     // attack, accepted
            lc(1, HeuristicLabel::Http),    // special, accepted
            lc(2, HeuristicLabel::Ping),    // attack, rejected
            lc(3, HeuristicLabel::Unknown), // unknown, rejected
            lc(4, HeuristicLabel::Unknown), // unknown, rejected
        ];
        let decisions = vec![dec(true), dec(true), dec(false), dec(false), dec(false)];
        let r = attack_ratio_by_class(&labeled, &decisions);
        assert_eq!(r.accepted, Some(0.5));
        assert!((r.rejected.unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.n_accepted, 2);
        assert_eq!(r.n_rejected, 3);
    }

    #[test]
    fn empty_classes_are_none() {
        let labeled = vec![lc(0, HeuristicLabel::Smb)];
        let all_acc = attack_ratio_by_class(&labeled, &[dec(true)]);
        assert_eq!(all_acc.accepted, Some(1.0));
        assert_eq!(all_acc.rejected, None);
        let all_rej = attack_ratio_by_class(&labeled, &[dec(false)]);
        assert_eq!(all_rej.accepted, None);
        assert_eq!(all_rej.rejected, Some(1.0));
    }

    #[test]
    fn no_communities_is_all_none() {
        let r = attack_ratio_by_class(&[], &[]);
        assert_eq!(r.accepted, None);
        assert_eq!(r.rejected, None);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        attack_ratio_by_class(&[lc(0, HeuristicLabel::Smb)], &[]);
    }
}
