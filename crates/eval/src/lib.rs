//! # mawilab-eval
//!
//! Evaluation metrics behind every table and figure of the paper:
//!
//! * [`ratios`] — the **attack ratio** (§4.2.1): the fraction of
//!   communities labeled `Attack` by the Table-1 heuristics, computed
//!   over accepted/rejected classes (Figs. 6–7) and per detector
//!   (Fig. 6(c));
//! * [`gaincost`] — Table 2's four quantities (gain/cost ×
//!   accepted/rejected) overall and per detector (Fig. 8);
//! * [`dists`] — probability-density and CDF series used to render
//!   the distribution figures (Figs. 3, 6, 10);
//! * [`ground_truth`] — scoring against the synthetic archive's
//!   per-packet truth: per-strategy and per-detector
//!   detection/precision/recall, including the paper's headline
//!   "twice as many anomalies as the most accurate detector" check.
//!   (The real MAWI archive has no ground truth — this module is the
//!   evaluation the original authors could not run.)
//! * [`longitudinal`] — month-scale label stability over sequences of
//!   archive days: label churn, per-strategy decision flip rates,
//!   anomalous-set Jaccard drift, and worm-outbreak response — the
//!   operational view of the continuously running MAWILab service.

#![forbid(unsafe_code)]

pub mod condorcet;
pub mod dists;
pub mod gaincost;
pub mod ground_truth;
pub mod longitudinal;
pub mod ratios;

pub use condorcet::majority_accuracy;
pub use dists::{cdf_points, pdf_histogram};
pub use gaincost::{gain_cost, GainCost};
pub use ground_truth::{GroundTruthMatcher, StrategyScore};
pub use longitudinal::{
    adjacent_pairs, era_transitions, outbreak_response, stability_report,
    stability_report_from_pairs, AdjacentPair, AnomalyIdentity, DaySummary, EraTransition,
    IdentityTable, MonthlyStability, OutbreakResponse, RuleScope, StabilityReport, StrategyFlips,
    WormStatus,
};
pub use ratios::{attack_ratio_by_class, detector_attack_ratio, AttackRatios};
