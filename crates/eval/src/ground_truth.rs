//! Ground-truth scoring — the evaluation the paper could not run.
//!
//! The synthetic archive records which injected anomaly produced
//! every packet. This module matches alarm communities against those
//! records, yielding true detection/recall/precision for each
//! combination strategy and each single detector — including the
//! headline check that the combiner finds about twice as many
//! anomalies as the most accurate single detector (§1, §7).

use mawilab_combiner::Decision;
use mawilab_detectors::{DetectorKind, TraceView};
use mawilab_model::Granularity;
use mawilab_similarity::AlarmCommunities;
use mawilab_synth::GroundTruth;
use std::collections::{HashMap, HashSet};

/// Minimum fraction of an anomaly's packets a community must cover to
/// count as detecting it.
pub const DEFAULT_MIN_COVERAGE: f64 = 0.05;

/// Maps traffic-unit ids to the injected anomalies they carry.
#[derive(Debug, Clone)]
pub struct GroundTruthMatcher {
    /// item id → (anomaly id → tagged packet count).
    item_tags: HashMap<u32, HashMap<u32, u32>>,
    /// anomaly id → total packets.
    anomaly_sizes: HashMap<u32, u32>,
    /// Anomaly ids considered attacks.
    attack_ids: HashSet<u32>,
    min_coverage: f64,
}

impl GroundTruthMatcher {
    /// Indexes the truth at the estimator's granularity.
    pub fn new(view: &TraceView<'_>, truth: &GroundTruth, granularity: Granularity) -> Self {
        Self::with_coverage(view, truth, granularity, DEFAULT_MIN_COVERAGE)
    }

    /// Indexes with an explicit coverage threshold.
    pub fn with_coverage(
        view: &TraceView<'_>,
        truth: &GroundTruth,
        granularity: Granularity,
        min_coverage: f64,
    ) -> Self {
        Self::build(
            |i| match granularity {
                Granularity::Packet => i as u32,
                Granularity::Uniflow => view.flows.uniflow_of(i),
                Granularity::Biflow => view.flows.biflow_of(i),
            },
            truth,
            min_coverage,
        )
    }

    /// Indexes the truth from a precomputed packet-index → traffic-id
    /// map — the **streaming** path, where no `TraceView` or
    /// `FlowTable` exists. `item_ids[i]` must be the id the pipeline's
    /// `ItemIndex` assigned to packet `i` (stream order equals trace
    /// order), so the matcher speaks the same id space as the
    /// streaming report's communities.
    pub fn from_item_ids(item_ids: &[u32], truth: &GroundTruth, min_coverage: f64) -> Self {
        assert_eq!(
            item_ids.len(),
            truth.tags().len(),
            "item map and truth tags must cover the same packets"
        );
        Self::build(|i| item_ids[i], truth, min_coverage)
    }

    fn build(item_of: impl Fn(usize) -> u32, truth: &GroundTruth, min_coverage: f64) -> Self {
        let mut item_tags: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
        let mut anomaly_sizes: HashMap<u32, u32> = HashMap::new();
        for (i, tag) in truth.tags().iter().enumerate() {
            let Some(id) = *tag else { continue };
            *anomaly_sizes.entry(id).or_insert(0) += 1;
            *item_tags
                .entry(item_of(i))
                .or_default()
                .entry(id)
                .or_insert(0) += 1;
        }
        GroundTruthMatcher {
            item_tags,
            anomaly_sizes,
            attack_ids: truth.attack_ids().into_iter().collect(),
            min_coverage,
        }
    }

    /// Anomalies covered by a traffic-id set: id → tagged packets
    /// reached through the set's items.
    pub fn hits(&self, items: &[u32]) -> HashMap<u32, u32> {
        let mut out: HashMap<u32, u32> = HashMap::new();
        for item in items {
            if let Some(tags) = self.item_tags.get(item) {
                for (&id, &n) in tags {
                    *out.entry(id).or_insert(0) += n;
                }
            }
        }
        out
    }

    /// Anomaly ids a traffic set *detects* (coverage ≥ threshold).
    pub fn detected_by(&self, items: &[u32]) -> HashSet<u32> {
        self.hits(items)
            .into_iter()
            .filter(|(id, n)| {
                let total = self.anomaly_sizes.get(id).copied().unwrap_or(0).max(1);
                *n as f64 / total as f64 >= self.min_coverage
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// All injected anomaly ids.
    pub fn anomaly_ids(&self) -> HashSet<u32> {
        self.anomaly_sizes.keys().copied().collect()
    }

    /// Injected attack ids.
    pub fn attack_ids(&self) -> &HashSet<u32> {
        &self.attack_ids
    }
}

/// Ground-truth score of one strategy on one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrategyScore {
    /// Distinct anomalies covered by accepted communities.
    pub detected: HashSet<u32>,
    /// Distinct *attacks* covered by accepted communities.
    pub detected_attacks: HashSet<u32>,
    /// Accepted communities covering no anomaly at all (false
    /// positives).
    pub false_accepted: usize,
    /// Total accepted communities.
    pub accepted: usize,
    /// Total injected anomalies.
    pub total_anomalies: usize,
    /// Total injected attacks.
    pub total_attacks: usize,
}

impl StrategyScore {
    /// Recall over all injected anomalies.
    pub fn recall(&self) -> f64 {
        if self.total_anomalies == 0 {
            return 0.0;
        }
        self.detected.len() as f64 / self.total_anomalies as f64
    }

    /// Recall over injected attacks only.
    pub fn attack_recall(&self) -> f64 {
        if self.total_attacks == 0 {
            return 0.0;
        }
        self.detected_attacks.len() as f64 / self.total_attacks as f64
    }

    /// Fraction of accepted communities that cover a real anomaly.
    pub fn precision(&self) -> f64 {
        if self.accepted == 0 {
            return 0.0;
        }
        1.0 - self.false_accepted as f64 / self.accepted as f64
    }
}

/// Scores the accepted communities of a strategy against the truth.
pub fn score_strategy(
    matcher: &GroundTruthMatcher,
    communities: &AlarmCommunities,
    decisions: &[Decision],
) -> StrategyScore {
    assert_eq!(decisions.len(), communities.community_count());
    let mut score = StrategyScore {
        total_anomalies: matcher.anomaly_ids().len(),
        total_attacks: matcher.attack_ids().len(),
        ..Default::default()
    };
    for (c, d) in decisions.iter().enumerate() {
        if !d.accepted {
            continue;
        }
        score.accepted += 1;
        let detected = matcher.detected_by(&communities.community_traffic(c));
        if detected.is_empty() {
            score.false_accepted += 1;
        }
        for id in detected {
            if matcher.attack_ids().contains(&id) {
                score.detected_attacks.insert(id);
            }
            score.detected.insert(id);
        }
    }
    score
}

/// Anomalies detected by a single detector family's own alarms
/// (regardless of the combiner): the per-detector baseline of the
/// headline comparison.
pub fn score_detector(
    matcher: &GroundTruthMatcher,
    communities: &AlarmCommunities,
    detector: DetectorKind,
) -> HashSet<u32> {
    let mut detected = HashSet::new();
    for (i, alarm) in communities.alarms.iter().enumerate() {
        if alarm.detector != detector {
            continue;
        }
        detected.extend(matcher.detected_by(&communities.traffic[i]));
    }
    detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_core::{MawilabPipeline, PipelineConfig};
    use mawilab_model::FlowTable;
    use mawilab_synth::{SynthConfig, TraceGenerator};

    fn run() -> (mawilab_synth::LabeledTrace, FlowTable) {
        let lt = TraceGenerator::new(SynthConfig::default().with_seed(55)).generate();
        let flows = FlowTable::build(&lt.trace.packets);
        (lt, flows)
    }

    #[test]
    fn matcher_indexes_every_anomaly() {
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let m = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        assert_eq!(m.anomaly_ids().len(), lt.truth.anomalies().len());
        assert!(!m.attack_ids().is_empty());
        assert!(m.attack_ids().len() < m.anomaly_ids().len()); // benign kinds exist
    }

    #[test]
    fn full_trace_detects_everything() {
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let m = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        // The set of *all* uniflow ids covers every anomaly.
        let all: Vec<u32> = (0..flows.uniflow_count() as u32).collect();
        assert_eq!(m.detected_by(&all), m.anomaly_ids());
    }

    #[test]
    fn empty_set_detects_nothing() {
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let m = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        assert!(m.detected_by(&[]).is_empty());
    }

    #[test]
    fn strategy_scoring_bounds() {
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        let m = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        let score = score_strategy(&m, &report.communities, &report.decisions);
        assert!(score.recall() <= 1.0);
        assert!(score.precision() <= 1.0);
        assert!(score.detected_attacks.len() <= score.detected.len());
        assert_eq!(score.total_anomalies, lt.truth.anomalies().len());
    }

    #[test]
    fn detector_scores_are_subsets_of_union() {
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
        let m = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        let mut union: HashSet<u32> = HashSet::new();
        for d in DetectorKind::ALL {
            union.extend(score_detector(&m, &report.communities, d));
        }
        assert!(union.len() <= m.anomaly_ids().len());
        for d in DetectorKind::ALL {
            assert!(score_detector(&m, &report.communities, d).is_subset(&union));
        }
    }

    #[test]
    fn item_id_matcher_equals_view_matcher() {
        // The streaming constructor, fed the ids an ItemIndex assigns
        // in stream order, indexes exactly what the batch constructor
        // indexes from the flow table.
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let from_view = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        let mut ids = Vec::new();
        mawilab_model::ItemIndex::new(Granularity::Uniflow).ids_of(&lt.trace.packets, &mut ids);
        let from_ids = GroundTruthMatcher::from_item_ids(&ids, &lt.truth, DEFAULT_MIN_COVERAGE);
        assert_eq!(from_view.anomaly_ids(), from_ids.anomaly_ids());
        assert_eq!(from_view.attack_ids(), from_ids.attack_ids());
        let all: Vec<u32> = (0..flows.uniflow_count() as u32).collect();
        assert_eq!(from_view.detected_by(&all), from_ids.detected_by(&all));
    }

    #[test]
    fn higher_coverage_threshold_detects_less() {
        let (lt, flows) = run();
        let view = TraceView::new(&lt.trace, &flows);
        let loose = GroundTruthMatcher::with_coverage(&view, &lt.truth, Granularity::Uniflow, 0.01);
        let strict = GroundTruthMatcher::with_coverage(&view, &lt.truth, Granularity::Uniflow, 0.9);
        let all: Vec<u32> = (0..flows.uniflow_count() as u32).collect();
        assert!(strict.detected_by(&all).len() <= loose.detected_by(&all).len());
    }
}
