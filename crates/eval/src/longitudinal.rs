//! Longitudinal label-stability evaluation — the month-scale view.
//!
//! The MAWILab service's value is *continuous* operation over the
//! archive (paper §3, §6): a label stream is only useful if it stays
//! consistent day after day, through link upgrades and the
//! Blaster/Sasser outbreak epochs that destabilise individual
//! detectors (Figs. 7–8). This module measures exactly that, given a
//! sequence of per-day labeled reports:
//!
//! * **label churn** — communities are matched across adjacent days by
//!   a stable [`AnomalyIdentity`] (Table-1 taxonomy code + dominant
//!   rule scope); churn is the fraction of matched identities whose
//!   taxonomy label flips between the two days;
//! * **decision flip rates** — the same matching, per combination
//!   strategy, over raw accept/reject decisions;
//! * **Jaccard drift** — one minus the Jaccard similarity of the two
//!   days' anomalous identity sets: how much of yesterday's anomalous
//!   picture survives today;
//! * **outbreak response** — for each worm epoch, the calendar days
//!   from onset (first day the worm is injected) until its traffic is
//!   labeled `anomalous`, and how stably the long residual tail keeps
//!   that label.
//!
//! Community ids and traffic-unit ids are per-day artifacts, so none
//! of them can anchor a cross-day match; identities are built purely
//! from day-invariant features of the labeled output.

use mawilab_combiner::{ConfidenceTier, Decision};
use mawilab_label::{label_of, HeuristicLabel, LabeledCommunity, MawilabLabel};
use mawilab_model::{LinkEra, TraceDate, TrafficRule};
use std::collections::{BTreeMap, BTreeSet};

/// Scope of a community's dominant association rule: which feature
/// dimensions pin its traffic down. The MAWILab filters distinguish
/// point-to-point anomalies from one-to-many sources/sinks; the scope
/// is stable across days while the concrete addresses are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleScope {
    /// Both endpoints fixed (point-to-point).
    SrcDst,
    /// Source fixed, destinations spread (scan / outbound flood).
    SrcOnly,
    /// Destination fixed, sources spread (DDoS sink / inbound flood).
    DstOnly,
    /// Only ports fixed (service-wide pattern).
    PortsOnly,
    /// No 4-tuple constraint survived mining.
    Broad,
}

impl RuleScope {
    /// Scope of one rule.
    pub fn of(rule: &TrafficRule) -> RuleScope {
        match (rule.src.is_some(), rule.dst.is_some()) {
            (true, true) => RuleScope::SrcDst,
            (true, false) => RuleScope::SrcOnly,
            (false, true) => RuleScope::DstOnly,
            (false, false) if rule.sport.is_some() || rule.dport.is_some() => RuleScope::PortsOnly,
            (false, false) => RuleScope::Broad,
        }
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RuleScope::SrcDst => "src+dst",
            RuleScope::SrcOnly => "src",
            RuleScope::DstOnly => "dst",
            RuleScope::PortsOnly => "ports",
            RuleScope::Broad => "broad",
        }
    }
}

/// Day-stable identity of an anomaly: the Table-1 taxonomy code of
/// its traffic plus the scope of its dominant (highest-support)
/// association rule. Two communities on different days with the same
/// identity are treated as observations of the same ongoing anomaly
/// class — the granularity at which an archive operator tracks
/// stability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AnomalyIdentity {
    /// Table-1 heuristic label.
    pub heuristic: HeuristicLabel,
    /// Dominant rule scope.
    pub scope: RuleScope,
}

impl AnomalyIdentity {
    /// Identity of one labeled community. The dominant rule is the
    /// first of the summary (rules are sorted by support, descending);
    /// rule-less communities get [`RuleScope::Broad`].
    pub fn of(lc: &LabeledCommunity) -> AnomalyIdentity {
        AnomalyIdentity {
            heuristic: lc.heuristic,
            scope: lc
                .summary
                .rules
                .first()
                .map_or(RuleScope::Broad, |(rule, _)| RuleScope::of(rule)),
        }
    }

    /// Stable report code, e.g. `sasser/src` or `unknown/broad`.
    pub fn code(&self) -> String {
        format!(
            "{}/{}",
            self.heuristic.to_string().to_lowercase().replace(' ', "-"),
            self.scope.name()
        )
    }

    fn rank(&self) -> (usize, RuleScope) {
        let h = HeuristicLabel::ALL
            .iter()
            .position(|&h| h == self.heuristic)
            .unwrap_or(HeuristicLabel::ALL.len());
        (h, self.scope)
    }
}

impl PartialOrd for AnomalyIdentity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AnomalyIdentity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// Whether one worm epoch's traffic was injected and caught on a day.
#[derive(Debug, Clone)]
pub struct WormStatus {
    /// Worm name (`blaster`, `sasser`).
    pub worm: &'static str,
    /// True when at least one community labeled `anomalous` covers
    /// this worm's injected traffic that day.
    pub labeled_anomalous: bool,
}

/// One day of the archive, reduced to its stability-relevant facts.
#[derive(Debug, Clone)]
pub struct DaySummary {
    /// The archive day.
    pub date: TraceDate,
    /// Identity → most severe taxonomy label among the day's
    /// communities carrying it (`Anomalous` orders first).
    pub labels: BTreeMap<AnomalyIdentity, MawilabLabel>,
    /// Identity → confidence tier of the community whose label won the
    /// severity merge (first community wins ties). Lets churn and
    /// flip-rate aggregates be restricted to confidently-labeled
    /// identities.
    pub tiers: BTreeMap<AnomalyIdentity, ConfidenceTier>,
    /// Identities labeled `anomalous` (the day's anomalous picture).
    pub anomalous: BTreeSet<AnomalyIdentity>,
    /// Per combination strategy: identity → whether any community
    /// with that identity was accepted.
    pub strategy_accepts: Vec<(&'static str, BTreeMap<AnomalyIdentity, bool>)>,
    /// Worm epochs injected this day, with their detection status.
    pub worms: Vec<WormStatus>,
    /// Total labeled communities (denominator context for reports).
    pub communities: usize,
}

impl DaySummary {
    /// Reduces one day's labeled report. `strategies` carries each
    /// combination strategy's decisions over the same communities (one
    /// decision per labeled community, in community order).
    pub fn new(
        date: TraceDate,
        labeled: &[LabeledCommunity],
        strategies: &[(&'static str, Vec<Decision>)],
        worms: Vec<WormStatus>,
    ) -> Self {
        let mut labels: BTreeMap<AnomalyIdentity, MawilabLabel> = BTreeMap::new();
        let mut tiers: BTreeMap<AnomalyIdentity, ConfidenceTier> = BTreeMap::new();
        let mut anomalous = BTreeSet::new();
        for lc in labeled {
            let id = AnomalyIdentity::of(lc);
            // `MawilabLabel` orders by severity (Anomalous first);
            // identities merging several communities keep the most
            // severe view, as the published database effectively does
            // when filters overlap. The tier follows the community
            // whose label won the merge (strict `<` keeps the first
            // community on ties).
            match labels.get(&id) {
                Some(current) if lc.label >= *current => {}
                _ => {
                    labels.insert(id, lc.label);
                    tiers.insert(id, lc.confidence.tier);
                }
            }
            if lc.label == MawilabLabel::Anomalous {
                anomalous.insert(id);
            }
        }
        let strategy_accepts = strategies
            .iter()
            .map(|(name, decisions)| {
                assert_eq!(
                    decisions.len(),
                    labeled.len(),
                    "strategy {name}: one decision per community required"
                );
                let mut accepts: BTreeMap<AnomalyIdentity, bool> = BTreeMap::new();
                for (lc, d) in labeled.iter().zip(decisions) {
                    let e = accepts.entry(AnomalyIdentity::of(lc)).or_insert(false);
                    *e |= d.accepted;
                }
                (*name, accepts)
            })
            .collect();
        DaySummary {
            date,
            labels,
            tiers,
            anomalous,
            strategy_accepts,
            worms,
            communities: labeled.len(),
        }
    }

    /// Convenience: the taxonomy label a bare decision list implies
    /// per identity (used by tests and ad-hoc reducers).
    pub fn label_for(decision: &Decision) -> MawilabLabel {
        label_of(decision)
    }
}

/// Per-strategy flip counts of one adjacent-day pair.
#[derive(Debug, Clone)]
pub struct StrategyFlips {
    /// Strategy name.
    pub strategy: &'static str,
    /// Identities present on both days.
    pub matched: usize,
    /// Matched identities whose accept/reject decision differs.
    pub flips: usize,
}

impl StrategyFlips {
    /// Flips over matches (0 when nothing matched).
    pub fn flip_rate(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.flips as f64 / self.matched as f64
        }
    }
}

/// Stability comparison of two adjacent sampled days.
#[derive(Debug, Clone)]
pub struct AdjacentPair {
    /// Earlier day.
    pub from: TraceDate,
    /// Later day.
    pub to: TraceDate,
    /// Calendar distance in days.
    pub gap_days: i64,
    /// Identities present on both days.
    pub matched: usize,
    /// Matched identities whose taxonomy label differs.
    pub label_flips: usize,
    /// Matched identities whose merged tier is *not* `Uncertain` on
    /// both days — the confidently-labeled subset of `matched`.
    pub matched_confident: usize,
    /// Label flips among `matched_confident`.
    pub label_flips_confident: usize,
    /// Jaccard similarity of the two anomalous identity sets
    /// (1.0 when both are empty — nothing drifted).
    pub jaccard_anomalous: f64,
    /// Per-strategy decision flips over the matched identities.
    pub strategies: Vec<StrategyFlips>,
}

impl AdjacentPair {
    /// Label flips over matches (0 when nothing matched).
    pub fn churn(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.label_flips as f64 / self.matched as f64
        }
    }

    /// Label flips over the confidently-labeled matches (0 when
    /// nothing confident matched). The abstention tier exists exactly
    /// so this number can sit below [`churn`](Self::churn): flips
    /// concentrated in the uncertain band stop counting against the
    /// service once the band abstains.
    pub fn churn_confident(&self) -> f64 {
        if self.matched_confident == 0 {
            0.0
        } else {
            self.label_flips_confident as f64 / self.matched_confident as f64
        }
    }

    /// `1 - jaccard_anomalous`: how much of the anomalous picture
    /// changed.
    pub fn jaccard_drift(&self) -> f64 {
        1.0 - self.jaccard_anomalous
    }
}

/// Incremental cross-day identity matcher: carries the previous day's
/// identity → label/decision tables and matches each new day against
/// them in one pass, without rewinding through the day sequence.
///
/// This is the *single* matching implementation — the batch
/// [`adjacent_pairs`] folds days through it, and the warm-start sweep
/// carries one across its sequential day loop — so the longitudinal
/// eval and the warm harness cannot drift apart.
#[derive(Debug, Clone, Default)]
pub struct IdentityTable {
    last: Option<DaySummary>,
}

impl IdentityTable {
    /// An empty table (no day carried yet).
    pub fn new() -> Self {
        IdentityTable::default()
    }

    /// Matches `day` against the carried previous day and replaces the
    /// carried tables with `day`'s. Returns the adjacent-pair
    /// comparison, or `None` for the first day inserted.
    pub fn match_and_insert(&mut self, day: &DaySummary) -> Option<AdjacentPair> {
        let pair = self.last.as_ref().map(|prev| compare_pair(prev, day));
        self.last = Some(day.clone());
        pair
    }

    /// Date of the carried day, if any.
    pub fn carried_date(&self) -> Option<TraceDate> {
        self.last.as_ref().map(|d| d.date)
    }

    /// Drops the carried day (e.g. across a link-era boundary, where
    /// cross-day matches measure epoch change rather than stability).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

fn compare_pair(a: &DaySummary, b: &DaySummary) -> AdjacentPair {
    let mut matched = 0usize;
    let mut label_flips = 0usize;
    let mut matched_confident = 0usize;
    let mut label_flips_confident = 0usize;
    for (id, la) in &a.labels {
        if let Some(lb) = b.labels.get(id) {
            matched += 1;
            let flipped = la != lb;
            if flipped {
                label_flips += 1;
            }
            // An identity counts as confident only when *both* days'
            // merged tiers sit outside the abstention band.
            let confident = |d: &DaySummary| {
                d.tiers
                    .get(id)
                    .is_some_and(|t| *t != ConfidenceTier::Uncertain)
            };
            if confident(a) && confident(b) {
                matched_confident += 1;
                if flipped {
                    label_flips_confident += 1;
                }
            }
        }
    }
    let inter = a.anomalous.intersection(&b.anomalous).count();
    let union = a.anomalous.union(&b.anomalous).count();
    let jaccard_anomalous = if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    };
    let strategies = a
        .strategy_accepts
        .iter()
        .map(|(name, accepts_a)| {
            let accepts_b = b
                .strategy_accepts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, m)| m);
            let mut s = StrategyFlips {
                strategy: name,
                matched: 0,
                flips: 0,
            };
            if let Some(accepts_b) = accepts_b {
                for (id, va) in accepts_a {
                    if let Some(vb) = accepts_b.get(id) {
                        s.matched += 1;
                        if va != vb {
                            s.flips += 1;
                        }
                    }
                }
            }
            s
        })
        .collect();
    AdjacentPair {
        from: a.date,
        to: b.date,
        gap_days: b.date.days_since_epoch() - a.date.days_since_epoch(),
        matched,
        label_flips,
        matched_confident,
        label_flips_confident,
        jaccard_anomalous,
        strategies,
    }
}

/// Compares every consecutive pair of the (date-ordered) day sequence
/// by folding the days through one [`IdentityTable`].
pub fn adjacent_pairs(days: &[DaySummary]) -> Vec<AdjacentPair> {
    let mut table = IdentityTable::new();
    days.iter()
        .filter_map(|d| table.match_and_insert(d))
        .collect()
}

/// Response of the labeling service to one worm epoch.
#[derive(Debug, Clone)]
pub struct OutbreakResponse {
    /// Worm name.
    pub worm: &'static str,
    /// First sampled day the worm's traffic was injected.
    pub onset: Option<TraceDate>,
    /// First sampled day its traffic was labeled `anomalous`.
    pub first_labeled: Option<TraceDate>,
    /// Calendar days from onset to the first anomalous label (0 =
    /// caught on its first sampled day).
    pub response_days: Option<i64>,
    /// Sampled worm days after the first labeled day — the residual
    /// tail under observation.
    pub residual_days: usize,
    /// Residual-tail days still labeled `anomalous`.
    pub residual_stable_days: usize,
}

impl OutbreakResponse {
    /// Fraction of the residual tail that kept the anomalous label
    /// (1.0 when no residual day was sampled — nothing destabilised).
    pub fn residual_stability(&self) -> f64 {
        if self.residual_days == 0 {
            1.0
        } else {
            self.residual_stable_days as f64 / self.residual_days as f64
        }
    }
}

/// Outbreak response per worm, in order of first appearance.
pub fn outbreak_response(days: &[DaySummary]) -> Vec<OutbreakResponse> {
    let mut order: Vec<&'static str> = Vec::new();
    for day in days {
        for w in &day.worms {
            if !order.contains(&w.worm) {
                order.push(w.worm);
            }
        }
    }
    order
        .into_iter()
        .map(|worm| {
            let mut resp = OutbreakResponse {
                worm,
                onset: None,
                first_labeled: None,
                response_days: None,
                residual_days: 0,
                residual_stable_days: 0,
            };
            for day in days {
                let Some(status) = day.worms.iter().find(|w| w.worm == worm) else {
                    continue;
                };
                if resp.onset.is_none() {
                    resp.onset = Some(day.date);
                }
                match resp.first_labeled {
                    None => {
                        if status.labeled_anomalous {
                            resp.first_labeled = Some(day.date);
                            resp.response_days = Some(
                                day.date.days_since_epoch()
                                    - resp.onset.unwrap().days_since_epoch(),
                            );
                        }
                    }
                    Some(_) => {
                        resp.residual_days += 1;
                        if status.labeled_anomalous {
                            resp.residual_stable_days += 1;
                        }
                    }
                }
            }
            resp
        })
        .collect()
}

/// One calendar month's slice of the stability trajectory — the unit
/// a month-scale (`--days`/`--months`) sweep is read at. Pairs are
/// bucketed by the *later* day's month.
#[derive(Debug, Clone, PartialEq)]
pub struct MonthlyStability {
    /// Calendar year of the bucket.
    pub year: u16,
    /// Calendar month 1–12.
    pub month: u8,
    /// Adjacent pairs landing in this month.
    pub pairs: usize,
    /// Total matched identities over those pairs.
    pub matched: usize,
    /// Total taxonomy-label flips over those pairs.
    pub flips: usize,
    /// Sum of per-pair Jaccard drift (divide by `pairs` for the mean).
    pub drift_sum: f64,
}

impl MonthlyStability {
    /// Pooled label churn of the month (0 when nothing matched).
    pub fn churn(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.flips as f64 / self.matched as f64
        }
    }

    /// Mean Jaccard drift of the month (0 when no pairs).
    pub fn jaccard_drift(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.drift_sum / self.pairs as f64
        }
    }
}

/// An adjacent pair whose days fall under different link eras — the
/// label shock of a capacity upgrade, reported next to (never pooled
/// into) the day-over-day stability aggregates.
#[derive(Debug, Clone)]
pub struct EraTransition {
    /// Last day under the old era.
    pub from: TraceDate,
    /// First sampled day under the new era.
    pub to: TraceDate,
    /// Era before the boundary.
    pub from_era: LinkEra,
    /// Era after the boundary.
    pub to_era: LinkEra,
    /// Identities matched across the boundary.
    pub matched: usize,
    /// Matched identities whose taxonomy label flipped.
    pub label_flips: usize,
    /// Jaccard drift of the anomalous sets across the boundary.
    pub jaccard_drift: f64,
}

impl EraTransition {
    /// Label churn across the boundary.
    pub fn churn(&self) -> f64 {
        if self.matched == 0 {
            0.0
        } else {
            self.label_flips as f64 / self.matched as f64
        }
    }
}

/// Buckets gap-filtered pairs by the later day's calendar month.
fn monthly_stability(pairs: &[AdjacentPair]) -> Vec<MonthlyStability> {
    let mut months: BTreeMap<(u16, u8), MonthlyStability> = BTreeMap::new();
    for p in pairs {
        let m = months
            .entry((p.to.year, p.to.month))
            .or_insert(MonthlyStability {
                year: p.to.year,
                month: p.to.month,
                pairs: 0,
                matched: 0,
                flips: 0,
                drift_sum: 0.0,
            });
        m.pairs += 1;
        m.matched += p.matched;
        m.flips += p.label_flips;
        m.drift_sum += p.jaccard_drift();
    }
    months.into_values().collect()
}

/// Extracts the era-boundary crossings from an adjacent-pair sequence
/// (all pairs, not only gap-filtered ones — a sparse sample may jump
/// the boundary with a wide gap).
pub fn era_transitions(pairs: &[AdjacentPair]) -> Vec<EraTransition> {
    pairs
        .iter()
        .filter(|p| LinkEra::for_date(p.from) != LinkEra::for_date(p.to))
        .map(|p| EraTransition {
            from: p.from,
            to: p.to,
            from_era: LinkEra::for_date(p.from),
            to_era: LinkEra::for_date(p.to),
            matched: p.matched,
            label_flips: p.label_flips,
            jaccard_drift: p.jaccard_drift(),
        })
        .collect()
}

/// The full longitudinal report over a sampled day sequence.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Adjacent-day comparisons that entered the aggregates: pairs
    /// whose calendar gap is at most `max_gap_days` *and* whose days
    /// share a link era. Wider gaps and era-boundary crossings
    /// measure epoch change, not day-over-day stability — crossings
    /// are itemised in [`era_transitions`](Self::era_transitions)
    /// instead.
    pub pairs: Vec<AdjacentPair>,
    /// Pooled label churn: total flips / total matches over `pairs`.
    pub label_churn: f64,
    /// Pooled label churn restricted to identities confidently
    /// labeled on both days of their pair (tier ≠ `Uncertain`). With
    /// abstention thresholds off every label is confident and this
    /// equals `label_churn`.
    pub label_churn_confident: f64,
    /// Mean Jaccard drift of the anomalous sets over `pairs`.
    pub jaccard_drift: f64,
    /// Pooled per-strategy decision flip rates.
    pub strategy_flip_rates: Vec<(&'static str, f64)>,
    /// Outbreak response per worm epoch, over *all* sampled days.
    pub outbreaks: Vec<OutbreakResponse>,
    /// Month-by-month trajectory of `pairs`.
    pub monthly: Vec<MonthlyStability>,
    /// Link-era boundary crossings (from *all* adjacent pairs,
    /// gap-filtered or not).
    pub era_transitions: Vec<EraTransition>,
}

/// Builds the longitudinal report. `days` must be date-ordered;
/// consecutive pairs farther apart than `max_gap_days` are excluded
/// from the churn/drift aggregates (pass `i64::MAX` to keep all),
/// and pairs crossing a link-era boundary are pulled out into
/// `era_transitions` — the upgrade shock is reported next to, never
/// pooled into, the day-over-day stability numbers.
pub fn stability_report(days: &[DaySummary], max_gap_days: i64) -> StabilityReport {
    stability_report_from_pairs(days, adjacent_pairs(days), max_gap_days)
}

/// [`stability_report`] over adjacent pairs the caller has already
/// computed — the warm-start sweep matches days incrementally through
/// an [`IdentityTable`] as it runs and aggregates here without a
/// second pass over the day sequence. `all_pairs` must be the
/// unfiltered consecutive-pair comparisons of `days`.
pub fn stability_report_from_pairs(
    days: &[DaySummary],
    all_pairs: Vec<AdjacentPair>,
    max_gap_days: i64,
) -> StabilityReport {
    let transitions = era_transitions(&all_pairs);
    let pairs: Vec<AdjacentPair> = all_pairs
        .into_iter()
        .filter(|p| {
            p.gap_days <= max_gap_days && LinkEra::for_date(p.from) == LinkEra::for_date(p.to)
        })
        .collect();
    let (mut matched, mut flips) = (0usize, 0usize);
    let (mut matched_conf, mut flips_conf) = (0usize, 0usize);
    let mut drift_sum = 0.0;
    let mut strat: BTreeMap<usize, (&'static str, usize, usize)> = BTreeMap::new();
    for p in &pairs {
        matched += p.matched;
        flips += p.label_flips;
        matched_conf += p.matched_confident;
        flips_conf += p.label_flips_confident;
        drift_sum += p.jaccard_drift();
        for (i, s) in p.strategies.iter().enumerate() {
            let e = strat.entry(i).or_insert((s.strategy, 0, 0));
            e.1 += s.matched;
            e.2 += s.flips;
        }
    }
    StabilityReport {
        label_churn: if matched == 0 {
            0.0
        } else {
            flips as f64 / matched as f64
        },
        label_churn_confident: if matched_conf == 0 {
            0.0
        } else {
            flips_conf as f64 / matched_conf as f64
        },
        jaccard_drift: if pairs.is_empty() {
            0.0
        } else {
            drift_sum / pairs.len() as f64
        },
        strategy_flip_rates: strat
            .into_values()
            .map(|(name, m, f)| (name, if m == 0 { 0.0 } else { f as f64 / m as f64 }))
            .collect(),
        outbreaks: outbreak_response(days),
        monthly: monthly_stability(&pairs),
        era_transitions: transitions,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mawilab_combiner::LabelConfidence;
    use mawilab_label::{CommunitySummary, HeuristicLabel};
    use mawilab_model::TimeWindow;
    use std::net::Ipv4Addr;

    fn rule(src: bool, dst: bool, dport: Option<u16>) -> TrafficRule {
        TrafficRule {
            src: src.then_some(Ipv4Addr::new(10, 0, 0, 1)),
            dst: dst.then_some(Ipv4Addr::new(10, 0, 0, 2)),
            sport: None,
            dport,
            proto: None,
        }
    }

    fn community(
        c: usize,
        heuristic: HeuristicLabel,
        label: MawilabLabel,
        dom: Option<TrafficRule>,
    ) -> LabeledCommunity {
        // Thresholds-off shape: every label is confident, tier bound
        // to the hard decision.
        let tier = if label == MawilabLabel::Anomalous {
            ConfidenceTier::Anomalous
        } else {
            ConfidenceTier::Benign
        };
        community_tiered(c, heuristic, label, dom, tier)
    }

    fn community_tiered(
        c: usize,
        heuristic: HeuristicLabel,
        label: MawilabLabel,
        dom: Option<TrafficRule>,
        tier: ConfidenceTier,
    ) -> LabeledCommunity {
        LabeledCommunity {
            community: c,
            label,
            confidence: LabelConfidence {
                score: match tier {
                    ConfidenceTier::Anomalous => 0.9,
                    ConfidenceTier::Uncertain => 0.5,
                    ConfidenceTier::Benign => 0.1,
                },
                tier,
            },
            heuristic,
            summary: CommunitySummary {
                community: c,
                rules: dom.into_iter().map(|r| (r, 10)).collect(),
                rule_degree: 1.0,
                rule_support: 0.8,
                transactions: 12,
            },
            window: TimeWindow::new(0, 1_000_000),
            alarms: 2,
            detectors: 2,
        }
    }

    fn accept(n: usize, which: &[usize]) -> Vec<Decision> {
        (0..n).map(|c| Decision::new(which.contains(&c))).collect()
    }

    fn date(d: u8) -> TraceDate {
        TraceDate::new(2004, 6, d)
    }

    #[test]
    fn rule_scope_classification() {
        assert_eq!(RuleScope::of(&rule(true, true, None)), RuleScope::SrcDst);
        assert_eq!(RuleScope::of(&rule(true, false, None)), RuleScope::SrcOnly);
        assert_eq!(RuleScope::of(&rule(false, true, None)), RuleScope::DstOnly);
        assert_eq!(
            RuleScope::of(&rule(false, false, Some(445))),
            RuleScope::PortsOnly
        );
        assert_eq!(RuleScope::of(&rule(false, false, None)), RuleScope::Broad);
    }

    #[test]
    fn identity_codes_are_stable_and_distinct() {
        let a = AnomalyIdentity {
            heuristic: HeuristicLabel::Sasser,
            scope: RuleScope::SrcOnly,
        };
        let b = AnomalyIdentity {
            heuristic: HeuristicLabel::OtherAttack,
            scope: RuleScope::DstOnly,
        };
        assert_eq!(a.code(), "sasser/src");
        assert_eq!(b.code(), "other-attacks/dst");
        assert!(a < b, "identities order by Table-1 rank");
    }

    /// Day 1: sasser/src anomalous + ping/dst notice.
    /// Day 2: sasser/src suspicious (flip!) + ping/dst notice + new
    /// smb/src+dst anomalous.
    fn two_days() -> Vec<DaySummary> {
        let d1 = vec![
            community(
                0,
                HeuristicLabel::Sasser,
                MawilabLabel::Anomalous,
                Some(rule(true, false, Some(5554))),
            ),
            community(
                1,
                HeuristicLabel::Ping,
                MawilabLabel::Notice,
                Some(rule(false, true, None)),
            ),
        ];
        let d2 = vec![
            community(
                0,
                HeuristicLabel::Sasser,
                MawilabLabel::Suspicious,
                Some(rule(true, false, Some(5554))),
            ),
            community(
                1,
                HeuristicLabel::Ping,
                MawilabLabel::Notice,
                Some(rule(false, true, None)),
            ),
            community(
                2,
                HeuristicLabel::Smb,
                MawilabLabel::Anomalous,
                Some(rule(true, true, Some(445))),
            ),
        ];
        vec![
            DaySummary::new(
                date(1),
                &d1,
                &[("scann", accept(2, &[0])), ("maximum", accept(2, &[0, 1]))],
                vec![WormStatus {
                    worm: "sasser",
                    labeled_anomalous: true,
                }],
            ),
            DaySummary::new(
                date(2),
                &d2,
                &[
                    ("scann", accept(3, &[2])),
                    ("maximum", accept(3, &[0, 1, 2])),
                ],
                vec![WormStatus {
                    worm: "sasser",
                    labeled_anomalous: false,
                }],
            ),
        ]
    }

    #[test]
    fn churn_counts_label_flips_over_matches() {
        let days = two_days();
        let pairs = adjacent_pairs(&days);
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        assert_eq!(p.gap_days, 1);
        assert_eq!(p.matched, 2, "sasser/src and ping/dst match");
        assert_eq!(p.label_flips, 1, "only sasser flipped");
        assert_eq!(p.churn(), 0.5);
        // Thresholds-off fixtures: every label confident, so the
        // confident view degenerates to the full one.
        assert_eq!(p.matched_confident, p.matched);
        assert_eq!(p.label_flips_confident, p.label_flips);
        assert_eq!(p.churn_confident(), p.churn());
    }

    #[test]
    fn uncertain_tiers_abstain_from_confident_churn() {
        // Same two-day shape, but day 2's sasser community — the one
        // that flips Anomalous→Suspicious — lands in the uncertain
        // band. The flip then disappears from the confident view.
        let d1 = vec![
            community(
                0,
                HeuristicLabel::Sasser,
                MawilabLabel::Anomalous,
                Some(rule(true, false, Some(5554))),
            ),
            community(
                1,
                HeuristicLabel::Ping,
                MawilabLabel::Notice,
                Some(rule(false, true, None)),
            ),
        ];
        let d2 = vec![
            community_tiered(
                0,
                HeuristicLabel::Sasser,
                MawilabLabel::Suspicious,
                Some(rule(true, false, Some(5554))),
                ConfidenceTier::Uncertain,
            ),
            community(
                1,
                HeuristicLabel::Ping,
                MawilabLabel::Notice,
                Some(rule(false, true, None)),
            ),
        ];
        let days = vec![
            DaySummary::new(date(1), &d1, &[], vec![]),
            DaySummary::new(date(2), &d2, &[], vec![]),
        ];
        let p = &adjacent_pairs(&days)[0];
        assert_eq!((p.matched, p.label_flips), (2, 1));
        assert_eq!(
            (p.matched_confident, p.label_flips_confident),
            (1, 0),
            "the uncertain sasser identity abstains"
        );
        assert_eq!(p.churn(), 0.5);
        assert_eq!(p.churn_confident(), 0.0);
        let report = stability_report(&days, 7);
        assert_eq!(report.label_churn, 0.5);
        assert_eq!(report.label_churn_confident, 0.0);
        assert!(report.label_churn_confident < report.label_churn);
    }

    #[test]
    fn tier_follows_the_severity_merge_winner() {
        // Two communities share an identity; the Anomalous one wins
        // the severity merge, so its tier (Uncertain here) is the
        // identity's tier — not the Benign tier of the Notice loser.
        let d = vec![
            community(
                0,
                HeuristicLabel::Smb,
                MawilabLabel::Notice,
                Some(rule(true, true, Some(445))),
            ),
            community_tiered(
                1,
                HeuristicLabel::Smb,
                MawilabLabel::Anomalous,
                Some(rule(true, true, Some(445))),
                ConfidenceTier::Uncertain,
            ),
        ];
        let s = DaySummary::new(date(1), &d, &[], vec![]);
        assert_eq!(s.tiers.len(), 1);
        assert_eq!(
            *s.tiers.values().next().unwrap(),
            ConfidenceTier::Uncertain,
            "tier of the merge winner"
        );
    }

    #[test]
    fn identity_table_matches_pairwise_comparison() {
        let days = two_days();
        // Incremental matching through the shared table must equal the
        // batch pairwise loop — warm-start and eval use one matcher.
        let mut table = IdentityTable::new();
        let incremental: Vec<AdjacentPair> = days
            .iter()
            .filter_map(|d| table.match_and_insert(d))
            .collect();
        let batch = adjacent_pairs(&days);
        assert_eq!(incremental.len(), batch.len());
        for (a, b) in incremental.iter().zip(&batch) {
            assert_eq!(a.gap_days, b.gap_days);
            assert_eq!(a.matched, b.matched);
            assert_eq!(a.label_flips, b.label_flips);
            assert_eq!(a.jaccard_anomalous, b.jaccard_anomalous);
        }
        assert_eq!(table.carried_date(), Some(date(2)));
        table.reset();
        assert_eq!(table.carried_date(), None);
        // After a reset the next day has nothing to match against.
        assert!(table.match_and_insert(&days[0]).is_none());
    }

    #[test]
    fn strategy_flips_follow_decisions() {
        let days = two_days();
        let p = &adjacent_pairs(&days)[0];
        let scann = p.strategies.iter().find(|s| s.strategy == "scann").unwrap();
        // scann: sasser accepted→rejected (flip), ping rejected both.
        assert_eq!((scann.matched, scann.flips), (2, 1));
        let max = p
            .strategies
            .iter()
            .find(|s| s.strategy == "maximum")
            .unwrap();
        // maximum accepted both identities on both days.
        assert_eq!((max.matched, max.flips), (2, 0));
    }

    #[test]
    fn jaccard_measures_anomalous_set_overlap() {
        let days = two_days();
        let p = &adjacent_pairs(&days)[0];
        // Day 1 anomalous: {sasser/src}; day 2: {smb/src+dst}.
        // Intersection 0, union 2.
        assert_eq!(p.jaccard_anomalous, 0.0);
        assert_eq!(p.jaccard_drift(), 1.0);
    }

    #[test]
    fn empty_anomalous_sets_do_not_drift() {
        let quiet = |d: u8| {
            DaySummary::new(
                date(d),
                &[community(
                    0,
                    HeuristicLabel::Unknown,
                    MawilabLabel::Notice,
                    None,
                )],
                &[("scann", accept(1, &[]))],
                vec![],
            )
        };
        let days = vec![quiet(1), quiet(2)];
        let p = &adjacent_pairs(&days)[0];
        assert_eq!(p.jaccard_anomalous, 1.0);
        assert_eq!(p.churn(), 0.0);
    }

    #[test]
    fn outbreak_response_tracks_onset_and_residual() {
        let day = |d: u8, injected: bool, caught: bool| {
            DaySummary::new(
                date(d),
                &[],
                &[],
                if injected {
                    vec![WormStatus {
                        worm: "blaster",
                        labeled_anomalous: caught,
                    }]
                } else {
                    vec![]
                },
            )
        };
        // Not injected, onset missed, caught on day 3, residual:
        // caught, missed, caught.
        let days = vec![
            day(1, false, false),
            day(2, true, false),
            day(3, true, true),
            day(4, true, true),
            day(5, true, false),
            day(6, true, true),
        ];
        let resp = outbreak_response(&days);
        assert_eq!(resp.len(), 1);
        let r = &resp[0];
        assert_eq!(r.worm, "blaster");
        assert_eq!(r.onset, Some(date(2)));
        assert_eq!(r.first_labeled, Some(date(3)));
        assert_eq!(r.response_days, Some(1));
        assert_eq!(r.residual_days, 3);
        assert_eq!(r.residual_stable_days, 2);
        assert!((r.residual_stability() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_pools_and_filters_by_gap() {
        let mut days = two_days();
        // A third day far away (era jump): excluded from aggregates.
        days.push(DaySummary::new(
            TraceDate::new(2006, 8, 1),
            &[community(
                0,
                HeuristicLabel::Sasser,
                MawilabLabel::Notice,
                Some(rule(true, false, None)),
            )],
            &[("scann", accept(1, &[])), ("maximum", accept(1, &[]))],
            vec![],
        ));
        let report = stability_report(&days, 7);
        assert_eq!(report.pairs.len(), 1, "era jump filtered out");
        assert_eq!(report.label_churn, 0.5);
        assert_eq!(report.jaccard_drift, 1.0);
        let rates: BTreeMap<_, _> = report.strategy_flip_rates.iter().cloned().collect();
        assert_eq!(rates["scann"], 0.5);
        assert_eq!(rates["maximum"], 0.0);
        // Outbreaks still span all days.
        assert_eq!(report.outbreaks.len(), 1);
        // Even with the gap filter off, the 2004→2006 jump crosses a
        // link-era boundary and stays out of the pooled pairs (it is
        // itemised as a transition instead).
        let all = stability_report(&days, i64::MAX);
        assert_eq!(all.pairs.len(), 1);
        assert_eq!(all.era_transitions.len(), 1);
    }

    #[test]
    fn monthly_trajectory_buckets_by_calendar_month() {
        // Three days at a month boundary (2005 — no link-era change):
        // pair 1 lands in June, pair 2 in July (bucketed by the later
        // day).
        let day = |y: u16, m: u8, d: u8, label: MawilabLabel| {
            DaySummary::new(
                TraceDate::new(y, m, d),
                &[community(
                    0,
                    HeuristicLabel::Sasser,
                    label,
                    Some(rule(true, false, Some(5554))),
                )],
                &[],
                vec![],
            )
        };
        let days = vec![
            day(2005, 6, 29, MawilabLabel::Anomalous),
            day(2005, 6, 30, MawilabLabel::Anomalous),
            day(2005, 7, 1, MawilabLabel::Suspicious), // flip into July
        ];
        let report = stability_report(&days, 7);
        assert_eq!(report.monthly.len(), 2);
        let june = &report.monthly[0];
        assert_eq!((june.year, june.month, june.pairs), (2005, 6, 1));
        assert_eq!(june.churn(), 0.0);
        let july = &report.monthly[1];
        assert_eq!((july.year, july.month, july.pairs), (2005, 7, 1));
        assert_eq!(july.churn(), 1.0, "the flip lands in July's bucket");
        assert!(july.jaccard_drift() > 0.0);
    }

    #[test]
    fn era_transitions_flag_boundary_pairs_only() {
        let day = |y: u16, m: u8, d: u8| {
            DaySummary::new(
                TraceDate::new(y, m, d),
                &[community(
                    0,
                    HeuristicLabel::Sasser,
                    MawilabLabel::Anomalous,
                    Some(rule(true, false, None)),
                )],
                &[],
                vec![],
            )
        };
        // 2006-06-30 → 2006-07-01 crosses CAR→100M; the others do not.
        let days = vec![
            day(2006, 6, 29),
            day(2006, 6, 30),
            day(2006, 7, 1),
            day(2006, 7, 2),
        ];
        let report = stability_report(&days, 7);
        assert_eq!(report.era_transitions.len(), 1);
        let t = &report.era_transitions[0];
        assert_eq!(t.from, TraceDate::new(2006, 6, 30));
        assert_eq!(t.to, TraceDate::new(2006, 7, 1));
        assert_eq!(t.from_era, LinkEra::Car18Mbps);
        assert_eq!(t.to_era, LinkEra::Full100Mbps);
        assert_eq!(t.matched, 1);
        assert_eq!(t.churn(), 0.0);
        // The boundary pair is itemised, never pooled: only the two
        // within-era pairs enter the day-over-day aggregates.
        assert_eq!(report.pairs.len(), 2);
        assert!(report
            .pairs
            .iter()
            .all(|p| LinkEra::for_date(p.from) == LinkEra::for_date(p.to)));
        // Wide-gap epoch jumps are still reported as transitions even
        // though they are excluded from the churn aggregates.
        let sparse = vec![day(2006, 6, 1), day(2008, 6, 1)];
        let sparse_report = stability_report(&sparse, 7);
        assert!(sparse_report.pairs.is_empty());
        assert_eq!(sparse_report.era_transitions.len(), 1);
        assert_eq!(
            sparse_report.era_transitions[0].to_era,
            LinkEra::Full150Mbps
        );
    }

    #[test]
    fn report_on_empty_and_single_day_is_finite() {
        for days in [vec![], two_days()[..1].to_vec()] {
            let r = stability_report(&days, 7);
            assert!(r.pairs.is_empty());
            assert_eq!(r.label_churn, 0.0);
            assert_eq!(r.jaccard_drift, 0.0);
            assert!(r.label_churn.is_finite() && r.jaccard_drift.is_finite());
        }
    }

    #[test]
    fn most_severe_label_wins_within_an_identity() {
        let d = vec![
            community(
                0,
                HeuristicLabel::Smb,
                MawilabLabel::Notice,
                Some(rule(true, true, Some(445))),
            ),
            community(
                1,
                HeuristicLabel::Smb,
                MawilabLabel::Anomalous,
                Some(rule(true, true, Some(445))),
            ),
        ];
        let s = DaySummary::new(date(1), &d, &[("scann", accept(2, &[1]))], vec![]);
        assert_eq!(s.labels.len(), 1);
        assert_eq!(
            *s.labels.values().next().unwrap(),
            MawilabLabel::Anomalous,
            "severity merge"
        );
        assert_eq!(s.anomalous.len(), 1);
    }
}
