//! Traffic feature rules: 4-tuples with wildcards.
//!
//! The paper expresses both KL-detector alarms and the association
//! rules summarising a community as `<srcIP, sport, dstIP, dport>`
//! patterns "where elements can be omitted" (§3.2, §4.1.1). A
//! [`TrafficRule`] is that pattern plus an optional protocol
//! constraint; `None` fields are wildcards.

use crate::packet::{Packet, Protocol};
use std::fmt;
use std::net::Ipv4Addr;

/// A `<srcIP, sport, dstIP, dport>` pattern with wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TrafficRule {
    /// Source address constraint.
    pub src: Option<Ipv4Addr>,
    /// Source port constraint.
    pub sport: Option<u16>,
    /// Destination address constraint.
    pub dst: Option<Ipv4Addr>,
    /// Destination port constraint.
    pub dport: Option<u16>,
    /// Protocol constraint (not counted in the rule degree; the paper's
    /// rules are 4-tuples).
    pub proto: Option<Protocol>,
}

impl TrafficRule {
    /// The all-wildcard rule, matching every packet.
    pub fn any() -> Self {
        TrafficRule::default()
    }

    /// Rule pinning only the source host.
    pub fn src_host(ip: Ipv4Addr) -> Self {
        TrafficRule {
            src: Some(ip),
            ..Default::default()
        }
    }

    /// Rule pinning only the destination host.
    pub fn dst_host(ip: Ipv4Addr) -> Self {
        TrafficRule {
            dst: Some(ip),
            ..Default::default()
        }
    }

    /// Rule pinning only the destination port (optionally protocol).
    pub fn dst_port(port: u16, proto: Option<Protocol>) -> Self {
        TrafficRule {
            dport: Some(port),
            proto,
            ..Default::default()
        }
    }

    /// Number of non-wildcard items among the four tuple fields —
    /// the paper's *rule degree* contribution (ranges 0..=4).
    pub fn degree(&self) -> u32 {
        self.src.is_some() as u32
            + self.sport.is_some() as u32
            + self.dst.is_some() as u32
            + self.dport.is_some() as u32
    }

    /// Whether a packet satisfies every non-wildcard constraint.
    pub fn matches(&self, p: &Packet) -> bool {
        self.src.is_none_or(|v| v == p.src)
            && self.dst.is_none_or(|v| v == p.dst)
            && self.sport.is_none_or(|v| v == p.sport)
            && self.dport.is_none_or(|v| v == p.dport)
            && self.proto.is_none_or(|v| v == p.proto)
    }

    /// [`matches`](Self::matches) evaluated on a flow key instead of a
    /// packet. A rule constrains exactly the five key fields, so for
    /// every packet `p`: `matches(p) == matches_key(&FlowKey::of(p))`
    /// — which is what lets deferred extraction match compact
    /// `(FlowKey, ts)` evidence against alarms long after the packets
    /// are gone.
    pub fn matches_key(&self, k: &crate::flow::FlowKey) -> bool {
        self.src.is_none_or(|v| v == k.src)
            && self.dst.is_none_or(|v| v == k.dst)
            && self.sport.is_none_or(|v| v == k.sport)
            && self.dport.is_none_or(|v| v == k.dport)
            && self.proto.is_none_or(|v| v == k.proto)
    }

    /// Whether every packet matching `other` also matches `self`
    /// (i.e. `self` is equal to or more general than `other`).
    pub fn generalizes(&self, other: &TrafficRule) -> bool {
        fn cover<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(x), Some(y)) => x == y,
                (Some(_), None) => false,
            }
        }
        cover(&self.src, &other.src)
            && cover(&self.sport, &other.sport)
            && cover(&self.dst, &other.dst)
            && cover(&self.dport, &other.dport)
            && cover(&self.proto, &other.proto)
    }
}

impl fmt::Display for TrafficRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn item<T: fmt::Display>(v: &Option<T>) -> String {
            v.as_ref()
                .map_or_else(|| "*".to_string(), |x| x.to_string())
        }
        write!(
            f,
            "<{}, {}, {}, {}>",
            item(&self.src),
            item(&self.sport),
            item(&self.dst),
            item(&self.dport)
        )?;
        if let Some(p) = self.proto {
            write!(f, "/{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn pkt() -> Packet {
        Packet::tcp(0, ip(1), 4321, ip(2), 80, TcpFlags::syn(), 40)
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(TrafficRule::any().matches(&pkt()));
        assert_eq!(TrafficRule::any().degree(), 0);
    }

    #[test]
    fn full_rule_matches_exactly() {
        let r = TrafficRule {
            src: Some(ip(1)),
            sport: Some(4321),
            dst: Some(ip(2)),
            dport: Some(80),
            proto: Some(Protocol::Tcp),
        };
        assert!(r.matches(&pkt()));
        assert_eq!(r.degree(), 4);
        let mut other = pkt();
        other.dport = 443;
        assert!(!r.matches(&other));
    }

    #[test]
    fn proto_constraint_checked_but_not_counted() {
        let r = TrafficRule::dst_port(80, Some(Protocol::Udp));
        assert_eq!(r.degree(), 1);
        assert!(!r.matches(&pkt())); // pkt is TCP
        let r2 = TrafficRule::dst_port(80, Some(Protocol::Tcp));
        assert!(r2.matches(&pkt()));
    }

    #[test]
    fn generalizes_partial_order() {
        let any = TrafficRule::any();
        let host = TrafficRule::src_host(ip(1));
        let full = TrafficRule {
            src: Some(ip(1)),
            dport: Some(80),
            ..Default::default()
        };
        assert!(any.generalizes(&host));
        assert!(host.generalizes(&full));
        assert!(any.generalizes(&full));
        assert!(!full.generalizes(&host));
        assert!(!host.generalizes(&TrafficRule::src_host(ip(2))));
        // Reflexive.
        assert!(full.generalizes(&full));
    }

    #[test]
    fn display_uses_star_for_wildcards() {
        let r = TrafficRule {
            src: Some(ip(1)),
            dport: Some(80),
            ..Default::default()
        };
        assert_eq!(r.to_string(), "<10.0.0.1, *, *, 80>");
    }

    #[test]
    fn generalization_implies_match_superset() {
        // If a generalizes b and a packet matches b, it must match a.
        let a = TrafficRule::dst_host(ip(2));
        let b = TrafficRule {
            dst: Some(ip(2)),
            dport: Some(80),
            ..Default::default()
        };
        assert!(a.generalizes(&b));
        let p = pkt();
        assert!(b.matches(&p) && a.matches(&p));
    }
}
