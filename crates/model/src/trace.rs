//! Trace containers and archive metadata.
//!
//! A [`Trace`] is one MAWI-style capture: 15 minutes of time-sorted
//! packets plus metadata identifying the archive day and the link era
//! it was captured under (the MAWI link was upgraded twice over the
//! paper's 2001–2009 study window).

use crate::packet::Packet;
use std::fmt;

/// Half-open time interval `[start_us, end_us)` in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Inclusive start, µs.
    pub start_us: u64,
    /// Exclusive end, µs.
    pub end_us: u64,
}

impl TimeWindow {
    /// Creates a window; `start_us` must not exceed `end_us`.
    pub fn new(start_us: u64, end_us: u64) -> Self {
        assert!(start_us <= end_us, "window start after end");
        TimeWindow { start_us, end_us }
    }

    /// Window covering everything.
    pub fn all() -> Self {
        TimeWindow {
            start_us: 0,
            end_us: u64::MAX,
        }
    }

    /// Whether a timestamp falls inside the window.
    pub fn contains(&self, ts_us: u64) -> bool {
        ts_us >= self.start_us && ts_us < self.end_us
    }

    /// Whether two windows overlap.
    pub fn overlaps(&self, other: &TimeWindow) -> bool {
        self.start_us < other.end_us && other.start_us < self.end_us
    }

    /// Window length in microseconds.
    pub fn len_us(&self) -> u64 {
        self.end_us - self.start_us
    }

    /// The smallest window containing both.
    pub fn union(&self, other: &TimeWindow) -> TimeWindow {
        TimeWindow {
            start_us: self.start_us.min(other.start_us),
            end_us: self.end_us.max(other.end_us),
        }
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3}s, {:.3}s)",
            self.start_us as f64 / 1e6,
            self.end_us as f64 / 1e6
        )
    }
}

/// Calendar date of an archive trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceDate {
    /// Four-digit year.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

impl TraceDate {
    /// Creates a date, validating ranges (not month lengths).
    pub fn new(year: u16, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        TraceDate { year, month, day }
    }

    /// Fractional year, e.g. 2003.58 for Aug 2003 — the x-axis unit of
    /// the paper's time-series figures.
    pub fn fractional_year(&self) -> f64 {
        self.year as f64 + (self.month as f64 - 1.0) / 12.0 + (self.day as f64 - 1.0) / 365.0
    }

    /// Days since 1970-01-01 (proleptic Gregorian, civil-days
    /// algorithm). Used to derive deterministic per-day seeds and
    /// epoch-based packet timestamps.
    pub fn days_since_epoch(&self) -> i64 {
        let y = if self.month <= 2 {
            self.year as i64 - 1
        } else {
            self.year as i64
        };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Midnight of this date in µs since the Unix epoch.
    pub fn epoch_us(&self) -> u64 {
        (self.days_since_epoch() as u64) * 86_400 * 1_000_000
    }

    /// Inverse of [`days_since_epoch`](Self::days_since_epoch)
    /// (proleptic Gregorian, civil-days algorithm) — the date `days`
    /// days after 1970-01-01. Enables calendar arithmetic for
    /// consecutive-day archive sweeps.
    pub fn from_days_since_epoch(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let day = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let month = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        let year = (if month <= 2 { y + 1 } else { y }) as u16;
        TraceDate { year, month, day }
    }

    /// The date `n` calendar days after this one.
    pub fn plus_days(&self, n: i64) -> Self {
        TraceDate::from_days_since_epoch(self.days_since_epoch() + n)
    }

    /// `n` consecutive calendar days starting at `self` — the shape of
    /// a month-scale archive sweep.
    pub fn consecutive(&self, n: usize) -> Vec<TraceDate> {
        (0..n as i64).map(|d| self.plus_days(d)).collect()
    }
}

impl fmt::Display for TraceDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// MAWI samplepoint link era (paper §3.1): the capture link was an
/// 18 Mbps CAR on 100 Mbps until 2006-06-30, a full 100 Mbps link
/// until 2007-05-31, and 150 Mbps afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkEra {
    /// 18 Mbps committed access rate (2001 – 2006-06-30).
    Car18Mbps,
    /// Full 100 Mbps link (2006-07-01 – 2007-05-31).
    Full100Mbps,
    /// 150 Mbps link (since 2007-06-01).
    Full150Mbps,
}

impl LinkEra {
    /// Era in effect on a given archive date.
    pub fn for_date(date: TraceDate) -> Self {
        let key = (date.year, date.month, date.day);
        if key < (2006, 7, 1) {
            LinkEra::Car18Mbps
        } else if key < (2007, 6, 1) {
            LinkEra::Full100Mbps
        } else {
            LinkEra::Full150Mbps
        }
    }

    /// Nominal capacity in Mbps.
    pub fn capacity_mbps(&self) -> f64 {
        match self {
            LinkEra::Car18Mbps => 18.0,
            LinkEra::Full100Mbps => 100.0,
            LinkEra::Full150Mbps => 150.0,
        }
    }
}

/// Metadata attached to a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Archive day the trace belongs to.
    pub date: TraceDate,
    /// Capture duration in seconds (MAWI uses 15 minutes = 900 s).
    pub duration_s: u32,
    /// Link era in effect.
    pub era: LinkEra,
    /// Free-form capture point name (MAWI samplepoints "B"/"F").
    pub samplepoint: String,
}

impl TraceMeta {
    /// Metadata for a standard 15-minute samplepoint-B trace.
    pub fn standard(date: TraceDate) -> Self {
        TraceMeta {
            date,
            duration_s: 900,
            era: LinkEra::for_date(date),
            samplepoint: "B".into(),
        }
    }

    /// The capture window in epoch microseconds (traces start at
    /// 14:00 local, per MAWI convention; we use 14:00 UTC).
    pub fn window(&self) -> TimeWindow {
        let start = self.date.epoch_us() + 14 * 3600 * 1_000_000;
        TimeWindow::new(start, start + self.duration_s as u64 * 1_000_000)
    }
}

/// One capture: time-sorted packets plus metadata.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Trace metadata.
    pub meta: TraceMeta,
    /// Packets sorted by `ts_us` (enforced by [`Trace::new`]).
    pub packets: Vec<Packet>,
}

impl Trace {
    /// Creates a trace, sorting packets by timestamp if needed.
    pub fn new(meta: TraceMeta, mut packets: Vec<Packet>) -> Self {
        if !packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us) {
            packets.sort_by_key(|p| p.ts_us);
        }
        Trace { meta, packets }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Time window actually covered by the packets (meta window when
    /// empty).
    pub fn span(&self) -> TimeWindow {
        match (self.packets.first(), self.packets.last()) {
            (Some(f), Some(l)) => TimeWindow::new(f.ts_us, l.ts_us + 1),
            _ => self.meta.window(),
        }
    }

    /// Indices of packets whose timestamp falls inside `w`
    /// (binary search over the sorted timestamps).
    pub fn packet_range(&self, w: &TimeWindow) -> std::ops::Range<usize> {
        let lo = self.packets.partition_point(|p| p.ts_us < w.start_us);
        let hi = self.packets.partition_point(|p| p.ts_us < w.end_us);
        lo..hi
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.packets.iter().map(|p| p.len as u64).sum()
    }

    /// Mean offered load in Mbps over the meta duration.
    pub fn mean_rate_mbps(&self) -> f64 {
        if self.meta.duration_s == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / 1e6 / self.meta.duration_s as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    #[test]
    fn window_contains_and_overlaps() {
        let w = TimeWindow::new(10, 20);
        assert!(w.contains(10));
        assert!(!w.contains(20));
        assert!(w.overlaps(&TimeWindow::new(19, 30)));
        assert!(!w.overlaps(&TimeWindow::new(20, 30)));
        assert_eq!(w.len_us(), 10);
        assert_eq!(w.union(&TimeWindow::new(5, 12)), TimeWindow::new(5, 20));
    }

    #[test]
    #[should_panic(expected = "window start after end")]
    fn inverted_window_panics() {
        TimeWindow::new(5, 4);
    }

    #[test]
    fn date_epoch_matches_known_values() {
        // 2001-01-01 is 11323 days after 1970-01-01.
        assert_eq!(TraceDate::new(2001, 1, 1).days_since_epoch(), 11_323);
        assert_eq!(TraceDate::new(1970, 1, 1).days_since_epoch(), 0);
        // Leap handling: 2004-03-01 minus 2004-02-28 = 2 days.
        let feb = TraceDate::new(2004, 2, 28).days_since_epoch();
        let mar = TraceDate::new(2004, 3, 1).days_since_epoch();
        assert_eq!(mar - feb, 2);
    }

    #[test]
    fn date_arithmetic_round_trips() {
        // from_days_since_epoch inverts days_since_epoch across the
        // whole archive span, including leap days and month ends.
        for days in TraceDate::new(2001, 1, 1).days_since_epoch()
            ..=TraceDate::new(2009, 12, 31).days_since_epoch()
        {
            let d = TraceDate::from_days_since_epoch(days);
            assert_eq!(d.days_since_epoch(), days, "{d}");
        }
        assert_eq!(
            TraceDate::new(2004, 2, 28).plus_days(1),
            TraceDate::new(2004, 2, 29)
        );
        assert_eq!(
            TraceDate::new(2006, 6, 30).plus_days(1),
            TraceDate::new(2006, 7, 1)
        );
        assert_eq!(
            TraceDate::new(2003, 12, 31).plus_days(1),
            TraceDate::new(2004, 1, 1)
        );
    }

    #[test]
    fn consecutive_days_are_adjacent_and_ordered() {
        let days = TraceDate::new(2006, 6, 28).consecutive(6);
        assert_eq!(days.len(), 6);
        assert!(days
            .windows(2)
            .all(|w| w[1].days_since_epoch() - w[0].days_since_epoch() == 1));
        assert_eq!(days[3], TraceDate::new(2006, 7, 1));
        // A 6-day window straddling 2006-07-01 crosses the CAR→100M
        // era boundary.
        assert!(days
            .windows(2)
            .any(|w| LinkEra::for_date(w[0]) != LinkEra::for_date(w[1])));
    }

    #[test]
    fn fractional_year_is_monotone_over_archive() {
        let mut prev = 0.0;
        for y in 2001..=2009u16 {
            for m in 1..=12u8 {
                let fy = TraceDate::new(y, m, 1).fractional_year();
                assert!(fy > prev);
                prev = fy;
            }
        }
    }

    #[test]
    fn link_eras_follow_upgrade_dates() {
        assert_eq!(
            LinkEra::for_date(TraceDate::new(2004, 5, 1)),
            LinkEra::Car18Mbps
        );
        assert_eq!(
            LinkEra::for_date(TraceDate::new(2006, 6, 30)),
            LinkEra::Car18Mbps
        );
        assert_eq!(
            LinkEra::for_date(TraceDate::new(2006, 7, 1)),
            LinkEra::Full100Mbps
        );
        assert_eq!(
            LinkEra::for_date(TraceDate::new(2007, 5, 31)),
            LinkEra::Full100Mbps
        );
        assert_eq!(
            LinkEra::for_date(TraceDate::new(2007, 6, 1)),
            LinkEra::Full150Mbps
        );
        assert_eq!(LinkEra::Full150Mbps.capacity_mbps(), 150.0);
    }

    #[test]
    fn trace_sorts_unsorted_packets() {
        let meta = TraceMeta::standard(TraceDate::new(2005, 3, 1));
        let p1 = Packet::tcp(100, ip(1), 1, ip(2), 2, TcpFlags::syn(), 40);
        let p2 = Packet::tcp(50, ip(1), 1, ip(2), 2, TcpFlags::ack(), 40);
        let t = Trace::new(meta, vec![p1, p2]);
        assert_eq!(t.packets[0].ts_us, 50);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn packet_range_selects_window() {
        let meta = TraceMeta::standard(TraceDate::new(2005, 3, 1));
        let packets: Vec<_> = (0..10)
            .map(|i| Packet::udp(i * 10, ip(1), 1, ip(2), 2, 100))
            .collect();
        let t = Trace::new(meta, packets);
        assert_eq!(t.packet_range(&TimeWindow::new(20, 50)), 2..5);
        assert_eq!(t.packet_range(&TimeWindow::new(0, 1)), 0..1);
        assert_eq!(t.packet_range(&TimeWindow::new(1000, 2000)), 10..10);
    }

    #[test]
    fn rate_accounts_bytes_over_duration() {
        let mut meta = TraceMeta::standard(TraceDate::new(2005, 3, 1));
        meta.duration_s = 1;
        // 125_000 bytes in 1s = 1 Mbps.
        let packets = vec![Packet::udp(0, ip(1), 1, ip(2), 2, 62_500), {
            Packet::udp(1, ip(1), 1, ip(2), 2, 62_500)
        }];
        let t = Trace::new(meta, packets);
        assert!((t.mean_rate_mbps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn meta_window_is_15_minutes_at_1400utc() {
        let meta = TraceMeta::standard(TraceDate::new(2005, 3, 1));
        let w = meta.window();
        assert_eq!(w.len_us(), 900 * 1_000_000);
        assert_eq!(
            w.start_us,
            TraceDate::new(2005, 3, 1).epoch_us() + 14 * 3600 * 1_000_000
        );
    }

    #[test]
    fn empty_trace_span_falls_back_to_meta() {
        let meta = TraceMeta::standard(TraceDate::new(2005, 3, 1));
        let t = Trace::new(meta.clone(), vec![]);
        assert_eq!(t.span(), meta.window());
    }
}
