//! Flow keys and the packet→flow index.
//!
//! The similarity estimator compares alarms at three *traffic
//! granularities* (paper §2.1.1): raw packets, unidirectional flows and
//! bidirectional flows. [`FlowTable`] precomputes, once per trace, the
//! dense flow id of every packet at both flow granularities so that
//! alarm-traffic extraction is a single array lookup per packet.

use crate::packet::{Packet, Protocol};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Dense identifier of a flow within one [`FlowTable`].
pub type FlowId = u32;

/// Traffic granularity at which alarm traffic is expressed
/// (paper §2.1.1 and Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// Individual packets.
    Packet,
    /// Unidirectional 5-tuple flows — the paper's final choice (§5).
    #[default]
    Uniflow,
    /// Bidirectional flows (both directions folded together).
    Biflow,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Granularity::Packet => write!(f, "packet"),
            Granularity::Uniflow => write!(f, "uniflow"),
            Granularity::Biflow => write!(f, "biflow"),
        }
    }
}

/// Unidirectional flow key: the classic 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port (ICMP type for ICMP).
    pub sport: u16,
    /// Destination port (ICMP code for ICMP).
    pub dport: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl FlowKey {
    /// Extracts the unidirectional key of a packet.
    pub fn of(p: &Packet) -> Self {
        FlowKey {
            src: p.src,
            dst: p.dst,
            sport: p.sport,
            dport: p.dport,
            proto: p.proto,
        }
    }

    /// The same flow viewed from the opposite direction.
    pub fn reversed(&self) -> Self {
        FlowKey {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} > {}:{}",
            self.proto, self.src, self.sport, self.dst, self.dport
        )
    }
}

/// Bidirectional flow key: a [`FlowKey`] canonicalised so that both
/// directions of a conversation map to the same key.
///
/// Canonical form: the (address, port) endpoint pair that compares
/// smaller becomes the `a` side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BiflowKey {
    /// Lower endpoint address.
    pub a: Ipv4Addr,
    /// Lower endpoint port.
    pub aport: u16,
    /// Upper endpoint address.
    pub b: Ipv4Addr,
    /// Upper endpoint port.
    pub bport: u16,
    /// Transport protocol.
    pub proto: Protocol,
}

impl BiflowKey {
    /// Canonicalises a packet's endpoints into a bidirectional key.
    pub fn of(p: &Packet) -> Self {
        Self::from_flow(&FlowKey::of(p))
    }

    /// Canonicalises a unidirectional key.
    pub fn from_flow(k: &FlowKey) -> Self {
        if (k.src, k.sport) <= (k.dst, k.dport) {
            BiflowKey {
                a: k.src,
                aport: k.sport,
                b: k.dst,
                bport: k.dport,
                proto: k.proto,
            }
        } else {
            BiflowKey {
                a: k.dst,
                aport: k.dport,
                b: k.src,
                bport: k.sport,
                proto: k.proto,
            }
        }
    }
}

impl fmt::Display for BiflowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} <> {}:{}",
            self.proto, self.a, self.aport, self.b, self.bport
        )
    }
}

/// Per-flow aggregate statistics, used by the Table-1 heuristics and
/// the Hough detector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowStats {
    /// Number of packets in the flow.
    pub packets: u32,
    /// Total bytes.
    pub bytes: u64,
    /// Packets with SYN set.
    pub syn: u32,
    /// Packets with RST set.
    pub rst: u32,
    /// Packets with FIN set.
    pub fin: u32,
    /// First packet timestamp (µs).
    pub first_ts: u64,
    /// Last packet timestamp (µs).
    pub last_ts: u64,
}

impl FlowStats {
    fn update(&mut self, p: &Packet) {
        if self.packets == 0 {
            self.first_ts = p.ts_us;
        }
        self.packets += 1;
        self.bytes += p.len as u64;
        self.syn += p.flags.is_syn() as u32;
        self.rst += p.flags.is_rst() as u32;
        self.fin += p.flags.is_fin() as u32;
        self.last_ts = p.ts_us;
    }

    /// Flow duration in microseconds (0 for single-packet flows).
    pub fn duration_us(&self) -> u64 {
        self.last_ts.saturating_sub(self.first_ts)
    }
}

/// Packet→flow index for one trace, at both flow granularities.
///
/// Built in a single pass over the packets. Uniflow and biflow ids are
/// assigned densely in order of first appearance, so they double as
/// indices into the per-flow statistics vectors.
#[derive(Debug, Clone)]
pub struct FlowTable {
    uni_of_packet: Vec<FlowId>,
    bi_of_packet: Vec<FlowId>,
    uni_keys: Vec<FlowKey>,
    bi_keys: Vec<BiflowKey>,
    uni_stats: Vec<FlowStats>,
    bi_stats: Vec<FlowStats>,
    uni_index: HashMap<FlowKey, FlowId>,
    bi_index: HashMap<BiflowKey, FlowId>,
}

impl FlowTable {
    /// Builds the flow index for a packet sequence.
    pub fn build(packets: &[Packet]) -> Self {
        let mut t = FlowTable {
            uni_of_packet: Vec::with_capacity(packets.len()),
            bi_of_packet: Vec::with_capacity(packets.len()),
            uni_keys: Vec::new(),
            bi_keys: Vec::new(),
            uni_stats: Vec::new(),
            bi_stats: Vec::new(),
            uni_index: HashMap::new(),
            bi_index: HashMap::new(),
        };
        for p in packets {
            let uk = FlowKey::of(p);
            let uid = *t.uni_index.entry(uk).or_insert_with(|| {
                t.uni_keys.push(uk);
                t.uni_stats.push(FlowStats::default());
                (t.uni_keys.len() - 1) as FlowId
            });
            t.uni_stats[uid as usize].update(p);
            t.uni_of_packet.push(uid);

            let bk = BiflowKey::from_flow(&uk);
            let bid = *t.bi_index.entry(bk).or_insert_with(|| {
                t.bi_keys.push(bk);
                t.bi_stats.push(FlowStats::default());
                (t.bi_keys.len() - 1) as FlowId
            });
            t.bi_stats[bid as usize].update(p);
            t.bi_of_packet.push(bid);
        }
        t
    }

    /// Number of packets indexed.
    pub fn packet_count(&self) -> usize {
        self.uni_of_packet.len()
    }

    /// Number of distinct unidirectional flows.
    pub fn uniflow_count(&self) -> usize {
        self.uni_keys.len()
    }

    /// Number of distinct bidirectional flows.
    pub fn biflow_count(&self) -> usize {
        self.bi_keys.len()
    }

    /// Uniflow id of packet `i`.
    pub fn uniflow_of(&self, packet_idx: usize) -> FlowId {
        self.uni_of_packet[packet_idx]
    }

    /// Biflow id of packet `i`.
    pub fn biflow_of(&self, packet_idx: usize) -> FlowId {
        self.bi_of_packet[packet_idx]
    }

    /// Key of uniflow `id`.
    pub fn uniflow_key(&self, id: FlowId) -> &FlowKey {
        &self.uni_keys[id as usize]
    }

    /// Key of biflow `id`.
    pub fn biflow_key(&self, id: FlowId) -> &BiflowKey {
        &self.bi_keys[id as usize]
    }

    /// Statistics of uniflow `id`.
    pub fn uniflow_stats(&self, id: FlowId) -> &FlowStats {
        &self.uni_stats[id as usize]
    }

    /// Statistics of biflow `id`.
    pub fn biflow_stats(&self, id: FlowId) -> &FlowStats {
        &self.bi_stats[id as usize]
    }

    /// Looks up the id of a unidirectional key, if seen in the trace.
    pub fn find_uniflow(&self, key: &FlowKey) -> Option<FlowId> {
        self.uni_index.get(key).copied()
    }

    /// Looks up the id of a bidirectional key, if seen in the trace.
    pub fn find_biflow(&self, key: &BiflowKey) -> Option<FlowId> {
        self.bi_index.get(key).copied()
    }

    /// All unidirectional keys, indexed by flow id.
    pub fn uniflow_keys(&self) -> &[FlowKey] {
        &self.uni_keys
    }

    /// All bidirectional keys, indexed by flow id.
    pub fn biflow_keys(&self) -> &[BiflowKey] {
        &self.bi_keys
    }
}

/// Incremental traffic-unit id assigner for streaming ingest.
///
/// Assigns each packet the id of its traffic unit at one granularity,
/// reproducing **exactly** the dense first-appearance ids a
/// [`FlowTable`] built over the whole trace would assign — without
/// the table's per-packet vectors. Feeding the same packet sequence
/// chunk by chunk therefore yields ids interchangeable with the batch
/// pipeline's, which is what makes streaming and batch traffic sets
/// byte-identical. Memory is O(distinct flows) at flow granularities
/// and O(1) at packet granularity (ids are just the running index).
#[derive(Debug, Clone)]
pub struct ItemIndex {
    granularity: Granularity,
    next_packet: u32,
    uni_index: HashMap<FlowKey, FlowId>,
    uni_keys: Vec<FlowKey>,
    bi_index: HashMap<BiflowKey, FlowId>,
    bi_keys: Vec<BiflowKey>,
}

impl ItemIndex {
    /// Creates an empty index for one granularity.
    pub fn new(granularity: Granularity) -> Self {
        ItemIndex {
            granularity,
            next_packet: 0,
            uni_index: HashMap::new(),
            uni_keys: Vec::new(),
            bi_index: HashMap::new(),
            bi_keys: Vec::new(),
        }
    }

    /// The granularity ids are assigned at.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Id of the next packet's traffic unit, assigning a fresh id on
    /// first appearance. Must be called once per packet, in stream
    /// order.
    pub fn id_of(&mut self, p: &Packet) -> u32 {
        match self.granularity {
            Granularity::Packet => {
                let id = self.next_packet;
                self.next_packet += 1;
                id
            }
            Granularity::Uniflow => {
                let key = FlowKey::of(p);
                let next = self.uni_keys.len() as FlowId;
                *self.uni_index.entry(key).or_insert_with(|| {
                    self.uni_keys.push(key);
                    next
                })
            }
            Granularity::Biflow => {
                let key = BiflowKey::of(p);
                let next = self.bi_keys.len() as FlowId;
                *self.bi_index.entry(key).or_insert_with(|| {
                    self.bi_keys.push(key);
                    next
                })
            }
        }
    }

    /// Assigns ids for a whole chunk into `out` (cleared first).
    pub fn ids_of(&mut self, packets: &[Packet], out: &mut Vec<u32>) {
        out.clear();
        out.extend(packets.iter().map(|p| self.id_of(p)));
    }

    /// Key of uniflow `id` (panics unless built at uniflow
    /// granularity with `id` already assigned).
    pub fn uniflow_key(&self, id: FlowId) -> &FlowKey {
        &self.uni_keys[id as usize]
    }

    /// Key of biflow `id`.
    pub fn biflow_key(&self, id: FlowId) -> &BiflowKey {
        &self.bi_keys[id as usize]
    }

    /// Number of traffic units assigned so far.
    pub fn item_count(&self) -> usize {
        match self.granularity {
            Granularity::Packet => self.next_packet as usize,
            Granularity::Uniflow => self.uni_keys.len(),
            Granularity::Biflow => self.bi_keys.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TcpFlags;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn pkts() -> Vec<Packet> {
        vec![
            Packet::tcp(0, ip(1), 1000, ip(2), 80, TcpFlags::syn(), 40),
            Packet::tcp(10, ip(2), 80, ip(1), 1000, TcpFlags::syn_ack(), 40),
            Packet::tcp(20, ip(1), 1000, ip(2), 80, TcpFlags::ack(), 40),
            Packet::udp(30, ip(3), 53, ip(1), 999, 100),
        ]
    }

    #[test]
    fn uniflow_splits_directions_biflow_folds_them() {
        let t = FlowTable::build(&pkts());
        assert_eq!(t.uniflow_count(), 3);
        assert_eq!(t.biflow_count(), 2);
        // fwd and rev TCP packets share the biflow but not the uniflow.
        assert_eq!(t.biflow_of(0), t.biflow_of(1));
        assert_ne!(t.uniflow_of(0), t.uniflow_of(1));
        assert_eq!(t.uniflow_of(0), t.uniflow_of(2));
    }

    #[test]
    fn biflow_key_is_direction_invariant() {
        let k = FlowKey {
            src: ip(9),
            dst: ip(1),
            sport: 4444,
            dport: 80,
            proto: Protocol::Tcp,
        };
        assert_eq!(
            BiflowKey::from_flow(&k),
            BiflowKey::from_flow(&k.reversed())
        );
    }

    #[test]
    fn reversed_twice_is_identity() {
        let k = FlowKey {
            src: ip(9),
            dst: ip(1),
            sport: 4444,
            dport: 80,
            proto: Protocol::Tcp,
        };
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn stats_accumulate_flags_and_bytes() {
        let t = FlowTable::build(&pkts());
        let fwd = t.uniflow_of(0);
        let s = t.uniflow_stats(fwd);
        assert_eq!(s.packets, 2); // SYN + ACK
        assert_eq!(s.syn, 1);
        assert_eq!(s.bytes, 80);
        assert_eq!(s.first_ts, 0);
        assert_eq!(s.last_ts, 20);
        assert_eq!(s.duration_us(), 20);

        let bi = t.biflow_of(0);
        let bs = t.biflow_stats(bi);
        assert_eq!(bs.packets, 3);
        assert_eq!(bs.syn, 2); // SYN + SYN/ACK
    }

    #[test]
    fn lookup_by_key_round_trips() {
        let t = FlowTable::build(&pkts());
        for (i, p) in pkts().iter().enumerate() {
            let uk = FlowKey::of(p);
            assert_eq!(t.find_uniflow(&uk), Some(t.uniflow_of(i)));
            let bk = BiflowKey::of(p);
            assert_eq!(t.find_biflow(&bk), Some(t.biflow_of(i)));
        }
        let missing = FlowKey {
            src: ip(250),
            dst: ip(251),
            sport: 1,
            dport: 2,
            proto: Protocol::Tcp,
        };
        assert_eq!(t.find_uniflow(&missing), None);
    }

    #[test]
    fn empty_trace_builds_empty_table() {
        let t = FlowTable::build(&[]);
        assert_eq!(t.packet_count(), 0);
        assert_eq!(t.uniflow_count(), 0);
        assert_eq!(t.biflow_count(), 0);
    }

    #[test]
    fn flow_ids_are_dense_and_first_seen_ordered() {
        let t = FlowTable::build(&pkts());
        assert_eq!(t.uniflow_of(0), 0);
        assert_eq!(t.uniflow_of(1), 1);
        assert_eq!(t.uniflow_of(3), 2);
        assert_eq!(t.uniflow_keys().len(), t.uniflow_count());
    }

    #[test]
    fn item_index_matches_flow_table_ids() {
        let packets = pkts();
        let table = FlowTable::build(&packets);
        for g in [
            Granularity::Packet,
            Granularity::Uniflow,
            Granularity::Biflow,
        ] {
            let mut index = ItemIndex::new(g);
            for (i, p) in packets.iter().enumerate() {
                let expected = match g {
                    Granularity::Packet => i as u32,
                    Granularity::Uniflow => table.uniflow_of(i),
                    Granularity::Biflow => table.biflow_of(i),
                };
                assert_eq!(index.id_of(p), expected, "{g} id of packet {i}");
            }
        }
        // Chunked feeding assigns the same ids as one pass.
        let mut whole = ItemIndex::new(Granularity::Uniflow);
        let mut ids_whole = Vec::new();
        whole.ids_of(&packets, &mut ids_whole);
        let mut chunked = ItemIndex::new(Granularity::Uniflow);
        let mut ids_chunked = Vec::new();
        for half in packets.chunks(2) {
            let mut ids = Vec::new();
            chunked.ids_of(half, &mut ids);
            ids_chunked.extend(ids);
        }
        assert_eq!(ids_whole, ids_chunked);
        assert_eq!(whole.item_count(), table.uniflow_count());
        for id in 0..table.uniflow_count() {
            assert_eq!(whole.uniflow_key(id as u32), table.uniflow_key(id as u32));
        }
    }

    #[test]
    fn icmp_flows_keyed_by_type_code() {
        let a = Packet::icmp(0, ip(1), ip(2), 8, 0, 64);
        let b = Packet::icmp(1, ip(1), ip(2), 0, 0, 64); // echo reply: different type
        let t = FlowTable::build(&[a, b]);
        assert_eq!(t.uniflow_count(), 2);
    }
}
