//! Streaming packet sources: time-binned chunked ingest.
//!
//! The MAWILab service labels 15-minute traces from a multi-year
//! archive; materialising a whole multi-GB archive day as one
//! `Vec<Packet>` does not scale. A [`PacketSource`] instead yields the
//! trace as a sequence of time-binned [`PacketChunk`]s, so the peak
//! number of packets alive at any moment is bounded by one chunk.
//!
//! The trait *lends* each chunk (`next_chunk` returns `&PacketChunk`
//! borrowed from the source): the borrow ends before the next chunk
//! can be requested, so a consumer cannot accidentally accumulate the
//! whole trace — constant packet memory is enforced by the API shape,
//! not by convention. Sources reuse one internal buffer between
//! chunks.
//!
//! Chunk boundaries are aligned to the trace's nominal capture window
//! (`meta.window().start_us`) at a configurable bin width. The
//! default, [`DEFAULT_CHUNK_US`], matches the coarsest detector
//! analysis bin (the KL detector's 5-second histogram bin), so every
//! detector time bin is covered by whole chunks.
//!
//! Packets must arrive in non-decreasing timestamp order (MAWI pcap
//! files and the synth generator both guarantee this). Packets
//! stamped *before* the nominal window are folded into the first
//! chunk; packets after the nominal end simply extend the chunk
//! sequence — binning never drops traffic.

use crate::flow::{Granularity, ItemIndex};
use crate::packet::Packet;
use crate::pcap::PcapError;
use crate::trace::{TimeWindow, Trace, TraceMeta};
use std::fmt;

/// Default chunk width: 5 s, the detectors' coarsest analysis bin.
pub const DEFAULT_CHUNK_US: u64 = 5_000_000;

/// One time bin's worth of packets.
#[derive(Debug, Clone)]
pub struct PacketChunk {
    /// The time bin this chunk covers, `[start, end)` µs. Packets
    /// stamped before the trace's nominal window are folded into the
    /// first chunk, so `window` is nominal, not a bounding box.
    pub window: TimeWindow,
    /// The packets of the bin, in arrival order.
    pub packets: Vec<Packet>,
}

impl Default for PacketChunk {
    fn default() -> Self {
        PacketChunk {
            window: TimeWindow::new(0, 0),
            packets: Vec::new(),
        }
    }
}

impl PacketChunk {
    /// Number of packets in the chunk.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the chunk holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Errors produced while draining a packet source.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying pcap stream failed.
    Pcap(PcapError),
    /// The source cannot rewind for a second pass.
    RewindUnsupported(&'static str),
    /// A rewound source did not replay the same stream: the second
    /// pass saw a different chunk or packet count than the first.
    /// Two-pass consumers must fail here — with diverging streams the
    /// extraction pass would silently pair pass-2 traffic with pass-1
    /// alarms and produce wrong labels.
    ReplayDiverged {
        /// Chunks drained on the first pass.
        pass1_chunks: usize,
        /// Packets drained on the first pass.
        pass1_packets: u64,
        /// Chunks drained after the rewind.
        pass2_chunks: usize,
        /// Packets drained after the rewind.
        pass2_packets: u64,
    },
    /// A zero chunk width was requested — time bins must be positive.
    InvalidChunkWidth(u64),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Pcap(e) => write!(f, "packet source error: {e}"),
            SourceError::RewindUnsupported(what) => {
                write!(f, "source `{what}` does not support rewinding")
            }
            SourceError::ReplayDiverged {
                pass1_chunks,
                pass1_packets,
                pass2_chunks,
                pass2_packets,
            } => write!(
                f,
                "rewound source replayed a different stream: \
                 pass 1 saw {pass1_packets} packets in {pass1_chunks} chunks, \
                 pass 2 saw {pass2_packets} packets in {pass2_chunks} chunks"
            ),
            SourceError::InvalidChunkWidth(w) => {
                write!(f, "chunk bin width must be positive, got {w}")
            }
        }
    }
}

impl std::error::Error for SourceError {}

impl From<PcapError> for SourceError {
    fn from(e: PcapError) -> Self {
        SourceError::Pcap(e)
    }
}

/// A time-binned stream of packets.
///
/// The pipeline drains a source twice (detection pass, then
/// extraction/labeling pass), so sources must support [`rewind`].
///
/// [`rewind`]: PacketSource::rewind
pub trait PacketSource {
    /// Metadata of the trace being streamed.
    fn meta(&self) -> &TraceMeta;

    /// Bin width of the emitted chunks, microseconds.
    fn bin_us(&self) -> u64;

    /// Lends the next chunk, or `None` at end of stream. The chunk
    /// borrow ends when the source is next touched; sources reuse the
    /// buffer, so callers must copy anything they need to keep.
    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError>;

    /// Restarts the stream from the beginning for another pass.
    fn rewind(&mut self) -> Result<(), SourceError>;
}

/// A [`PacketSource`] that can also hand out per-packet ground-truth
/// tags alongside each chunk.
///
/// `next_chunk_tagged` returns the chunk and its tags under one
/// borrow, because both live in the source's reused buffers — separate
/// `next_chunk()` + `tags()` calls could not be expressed without the
/// chunk borrow conflicting with a second `&self` method. Sources
/// without ground truth can return an empty tag slice.
pub trait TaggedSource: PacketSource {
    /// Lends the next chunk together with its per-packet tags
    /// (`tags[i]` belongs to `chunk.packets[i]`; `None` = background).
    fn next_chunk_tagged(&mut self) -> Result<Option<TaggedChunk<'_>>, SourceError>;
}

/// One lent chunk of a [`TaggedSource`] with its aligned tag slice.
pub type TaggedChunk<'a> = (&'a PacketChunk, &'a [Option<u32>]);

/// Receives every chunk (and its ground-truth tags) as it streams
/// past a [`TapSource`] — the single-pass replacement for the
/// harness's ground-truth pre-pass: truth is observed *during* the
/// one pipeline drain instead of on a drain of its own.
pub trait ChunkConsumer {
    /// Observes one chunk in stream order. `tags` aligns with
    /// `chunk.packets` when the source carries ground truth, and is
    /// empty otherwise.
    fn observe_chunk(&mut self, chunk: &PacketChunk, tags: &[Option<u32>]);
}

impl<C: ChunkConsumer + ?Sized> ChunkConsumer for &mut C {
    fn observe_chunk(&mut self, chunk: &PacketChunk, tags: &[Option<u32>]) {
        (**self).observe_chunk(chunk, tags);
    }
}

/// A [`PacketSource`] adapter that feeds every chunk of a
/// [`TaggedSource`] to a [`ChunkConsumer`] on its way to the draining
/// pipeline. This is what lets `run_days_streaming` collect ground
/// truth and the packet→unit map in the *same* drain the pipeline
/// consumes — no pre-pass, no rewind.
///
/// Rewinding is refused: a replay would feed every chunk to the
/// consumer a second time and silently double-collect.
pub struct TapSource<S, C> {
    inner: S,
    consumer: C,
}

impl<S: TaggedSource, C: ChunkConsumer> TapSource<S, C> {
    /// Taps `inner`, sending each chunk to `consumer` as it passes.
    pub fn new(inner: S, consumer: C) -> Self {
        TapSource { inner, consumer }
    }

    /// Recovers the wrapped source and consumer.
    pub fn into_parts(self) -> (S, C) {
        (self.inner, self.consumer)
    }
}

impl<S: TaggedSource, C: ChunkConsumer> PacketSource for TapSource<S, C> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn bin_us(&self) -> u64 {
        self.inner.bin_us()
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        match self.inner.next_chunk_tagged()? {
            Some((chunk, tags)) => {
                self.consumer.observe_chunk(chunk, tags);
                Ok(Some(chunk))
            }
            None => Ok(None),
        }
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        Err(SourceError::RewindUnsupported("TapSource"))
    }
}

/// The [`ChunkConsumer`] that replaces the harness's ground-truth
/// pre-pass: collects per-packet anomaly tags and traffic-unit ids
/// (via an incremental [`ItemIndex`] driven in stream order, so the
/// ids are exactly the ones the draining pipeline assigns) while the
/// pipeline consumes the same chunks.
pub struct StreamTruthCollector {
    index: ItemIndex,
    ids_buf: Vec<u32>,
    item_ids: Vec<u32>,
    tags: Vec<Option<u32>>,
}

impl StreamTruthCollector {
    /// An empty collector assigning ids at `granularity`.
    pub fn new(granularity: Granularity) -> Self {
        StreamTruthCollector {
            index: ItemIndex::new(granularity),
            ids_buf: Vec::new(),
            item_ids: Vec::new(),
            tags: Vec::new(),
        }
    }

    /// Traffic-unit id of every packet seen so far, in stream order.
    pub fn item_ids(&self) -> &[u32] {
        &self.item_ids
    }

    /// Ground-truth tag of every packet seen so far, in stream order.
    pub fn tags(&self) -> &[Option<u32>] {
        &self.tags
    }

    /// Recovers `(item_ids, tags)` once the drain is over.
    pub fn into_parts(self) -> (Vec<u32>, Vec<Option<u32>>) {
        (self.item_ids, self.tags)
    }
}

impl ChunkConsumer for StreamTruthCollector {
    fn observe_chunk(&mut self, chunk: &PacketChunk, tags: &[Option<u32>]) {
        assert!(
            tags.len() == chunk.len() || tags.is_empty(),
            "tag slice must align with the chunk or be absent"
        );
        self.index.ids_of(&chunk.packets, &mut self.ids_buf);
        self.item_ids.extend_from_slice(&self.ids_buf);
        if tags.is_empty() {
            self.tags.resize(self.tags.len() + chunk.len(), None);
        } else {
            self.tags.extend_from_slice(tags);
        }
    }
}

/// A [`PacketSource`] wrapper that refuses to rewind — the live-link
/// contract made checkable. Wrapping a source in `NoRewindSource`
/// proves a consumer is genuinely single-pass: any rewind attempt
/// returns [`SourceError::RewindUnsupported`] (and is counted), so a
/// pipeline that completes through this wrapper demonstrably drained
/// the stream exactly once.
pub struct NoRewindSource<S> {
    inner: S,
    rewinds_refused: usize,
}

impl<S: PacketSource> NoRewindSource<S> {
    /// Seals `inner` against rewinding.
    pub fn new(inner: S) -> Self {
        NoRewindSource {
            inner,
            rewinds_refused: 0,
        }
    }

    /// How many rewind attempts were refused (0 for a true
    /// single-pass consumer).
    pub fn rewinds_refused(&self) -> usize {
        self.rewinds_refused
    }

    /// Recovers the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PacketSource> PacketSource for NoRewindSource<S> {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn bin_us(&self) -> u64 {
        self.inner.bin_us()
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        self.inner.next_chunk()
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.rewinds_refused += 1;
        Err(SourceError::RewindUnsupported("NoRewindSource"))
    }
}

/// Index of the chunk bin a timestamp falls into, relative to the
/// nominal window start (pre-window timestamps fold into bin 0).
pub fn chunk_index(window_start_us: u64, bin_us: u64, ts_us: u64) -> u64 {
    ts_us.saturating_sub(window_start_us) / bin_us.max(1)
}

/// Nominal window of chunk bin `k`.
pub fn chunk_window(window_start_us: u64, bin_us: u64, k: u64) -> TimeWindow {
    let start = window_start_us + k * bin_us;
    TimeWindow::new(start, start + bin_us)
}

/// Drains a source from its current position, concatenating every
/// remaining chunk into one packet vector. The equivalence oracle of
/// the streaming test suites: `collect_packets(source)` must equal the
/// batch-materialised trace for any chunk width.
pub fn collect_packets<S: PacketSource + ?Sized>(
    source: &mut S,
) -> Result<Vec<Packet>, SourceError> {
    let mut out = Vec::new();
    while let Some(chunk) = source.next_chunk()? {
        out.extend_from_slice(&chunk.packets);
    }
    Ok(out)
}

/// [`PacketSource`] over an in-memory [`Trace`].
///
/// This is the adapter that lets batch-held traces (tests, the synth
/// generator, benches) flow through the streaming pipeline without
/// temp files. The source owns the trace, but consumers still only
/// ever see one chunk at a time.
#[derive(Debug, Clone)]
pub struct TraceChunker {
    trace: Trace,
    bin_us: u64,
    pos: usize,
    buf: PacketChunk,
}

impl TraceChunker {
    /// Chunks a trace at `bin_us`-wide time bins. Panics on a zero
    /// width; config-driven callers should prefer [`Self::try_new`].
    pub fn new(trace: Trace, bin_us: u64) -> Self {
        Self::try_new(trace, bin_us).expect("chunk bin width must be positive") // lint:allow(panic-free-data-plane): callers pass compile-time constant widths; try_new is the config-driven path
    }

    /// Chunks a trace at `bin_us`-wide time bins, rejecting a zero
    /// width with a typed error instead of a panic.
    pub fn try_new(trace: Trace, bin_us: u64) -> Result<Self, SourceError> {
        if bin_us == 0 {
            return Err(SourceError::InvalidChunkWidth(bin_us));
        }
        Ok(TraceChunker {
            trace,
            bin_us,
            pos: 0,
            buf: PacketChunk::default(),
        })
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Recovers the wrapped trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl PacketSource for TraceChunker {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn bin_us(&self) -> u64 {
        self.bin_us
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        let packets = &self.trace.packets;
        if self.pos >= packets.len() {
            return Ok(None);
        }
        let start_us = self.trace.meta.window().start_us;
        let k = chunk_index(start_us, self.bin_us, packets[self.pos].ts_us);
        let begin = self.pos;
        let mut end = self.pos;
        while end < packets.len() && chunk_index(start_us, self.bin_us, packets[end].ts_us) <= k {
            end += 1;
        }
        self.pos = end;
        self.buf.window = chunk_window(start_us, self.bin_us, k);
        self.buf.packets.clear();
        self.buf.packets.extend_from_slice(&packets[begin..end]);
        Ok(Some(&self.buf))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.pos = 0;
        self.buf = PacketChunk::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::trace::TraceDate;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn trace_with_offsets(offsets_us: &[u64]) -> Trace {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let base = meta.window().start_us;
        let packets: Vec<Packet> = offsets_us
            .iter()
            .map(|&o| Packet::udp(base + o, ip(1), 1, ip(2), 2, 100))
            .collect();
        Trace::new(meta, packets)
    }

    #[test]
    fn zero_chunk_width_is_a_typed_error() {
        let trace = trace_with_offsets(&[0]);
        assert!(matches!(
            TraceChunker::try_new(trace, 0),
            Err(SourceError::InvalidChunkWidth(0))
        ));
    }

    #[test]
    fn chunks_partition_the_trace_in_order() {
        let trace = trace_with_offsets(&[0, 1, 2_000_000, 2_500_000, 9_000_000]);
        let total = trace.len();
        let mut src = TraceChunker::new(trace, 1_000_000);
        let mut seen = 0usize;
        let mut last_window_start = 0;
        while let Some(chunk) = src.next_chunk().unwrap() {
            assert!(!chunk.is_empty(), "empty chunk emitted");
            assert!(chunk.window.start_us >= last_window_start);
            last_window_start = chunk.window.start_us;
            for p in &chunk.packets {
                assert!(chunk.window.contains(p.ts_us));
            }
            seen += chunk.len();
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn empty_bins_are_skipped_not_emitted() {
        let trace = trace_with_offsets(&[0, 9_000_000]);
        let mut src = TraceChunker::new(trace, 1_000_000);
        let mut chunks = 0;
        while let Some(c) = src.next_chunk().unwrap() {
            assert_eq!(c.len(), 1);
            chunks += 1;
        }
        assert_eq!(chunks, 2);
    }

    #[test]
    fn rewind_replays_identically() {
        let trace = trace_with_offsets(&[0, 1, 5_500_000, 7_000_000]);
        let mut src = TraceChunker::new(trace, 2_000_000);
        let mut first: Vec<(TimeWindow, usize)> = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            first.push((c.window, c.len()));
        }
        src.rewind().unwrap();
        let mut second: Vec<(TimeWindow, usize)> = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            second.push((c.window, c.len()));
        }
        assert_eq!(first, second);
    }

    #[test]
    fn pre_window_packets_fold_into_first_chunk() {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let base = meta.window().start_us;
        let packets = vec![
            Packet::udp(base - 10, ip(1), 1, ip(2), 2, 100), // clock skew
            Packet::udp(base + 5, ip(1), 1, ip(2), 2, 100),
        ];
        let trace = Trace::new(meta, packets);
        let mut src = TraceChunker::new(trace, 1_000_000);
        let c = src.next_chunk().unwrap().unwrap();
        assert_eq!(c.len(), 2);
        assert!(src.next_chunk().unwrap().is_none());
    }

    #[test]
    fn chunk_index_and_window_agree() {
        for ts in [0u64, 1, 999_999, 1_000_000, 5_432_109] {
            let k = chunk_index(0, 1_000_000, ts);
            assert!(chunk_window(0, 1_000_000, k).contains(ts));
        }
        // Pre-window folds to bin 0.
        assert_eq!(chunk_index(1_000, 500, 10), 0);
    }

    #[test]
    fn collect_packets_reassembles_the_trace() {
        let trace = trace_with_offsets(&[0, 1, 2_000_000, 2_500_000, 9_000_000]);
        let want = trace.packets.clone();
        let mut src = TraceChunker::new(trace, 1_000_000);
        assert_eq!(collect_packets(&mut src).unwrap(), want);
        // Drained source yields nothing more; after rewind, everything.
        assert!(collect_packets(&mut src).unwrap().is_empty());
        src.rewind().unwrap();
        assert_eq!(collect_packets(&mut src).unwrap(), want);
    }

    #[test]
    fn empty_trace_yields_no_chunks() {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let mut src = TraceChunker::new(Trace::new(meta, vec![]), DEFAULT_CHUNK_US);
        assert!(src.next_chunk().unwrap().is_none());
    }

    /// A [`TaggedSource`] over a chunker that tags every odd-index
    /// packet of the whole stream with its running index.
    struct OddTagged {
        inner: TraceChunker,
        emitted: usize,
        tags: Vec<Option<u32>>,
    }

    impl PacketSource for OddTagged {
        fn meta(&self) -> &TraceMeta {
            self.inner.meta()
        }

        fn bin_us(&self) -> u64 {
            self.inner.bin_us()
        }

        fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
            match self.inner.next_chunk()? {
                Some(chunk) => {
                    self.tags.clear();
                    for i in 0..chunk.len() {
                        let n = self.emitted + i;
                        self.tags.push((n % 2 == 1).then_some(n as u32));
                    }
                    self.emitted += chunk.len();
                    Ok(Some(chunk))
                }
                None => Ok(None),
            }
        }

        fn rewind(&mut self) -> Result<(), SourceError> {
            self.emitted = 0;
            self.tags.clear();
            self.inner.rewind()
        }
    }

    impl TaggedSource for OddTagged {
        fn next_chunk_tagged(&mut self) -> Result<Option<TaggedChunk<'_>>, SourceError> {
            if self.next_chunk()?.is_none() {
                return Ok(None);
            }
            Ok(Some((&self.inner.buf, &self.tags)))
        }
    }

    /// Accumulates everything a tap hands it.
    #[derive(Default)]
    struct Collector {
        packets: Vec<Packet>,
        tags: Vec<Option<u32>>,
        chunks: usize,
    }

    impl ChunkConsumer for Collector {
        fn observe_chunk(&mut self, chunk: &PacketChunk, tags: &[Option<u32>]) {
            self.packets.extend_from_slice(&chunk.packets);
            self.tags.extend_from_slice(tags);
            self.chunks += 1;
        }
    }

    #[test]
    fn tap_source_feeds_consumer_every_chunk_in_one_drain() {
        let trace = trace_with_offsets(&[0, 1, 2_000_000, 2_500_000, 9_000_000]);
        let want = trace.packets.clone();
        let tagged = OddTagged {
            inner: TraceChunker::new(trace, 1_000_000),
            emitted: 0,
            tags: Vec::new(),
        };
        let mut collector = Collector::default();
        let mut tap = TapSource::new(tagged, &mut collector);
        let drained = collect_packets(&mut tap).unwrap();
        assert!(matches!(
            tap.rewind(),
            Err(SourceError::RewindUnsupported("TapSource"))
        ));
        drop(tap);
        assert_eq!(drained, want, "tap must be transparent to the drain");
        assert_eq!(collector.packets, want, "consumer saw a different stream");
        assert_eq!(collector.chunks, 3);
        assert_eq!(
            collector.tags,
            vec![None, Some(1), None, Some(3), None],
            "tags must ride along per packet"
        );
    }

    #[test]
    fn no_rewind_source_streams_once_then_refuses_replay() {
        let trace = trace_with_offsets(&[0, 1, 2_000_000]);
        let want = trace.packets.clone();
        let mut src = NoRewindSource::new(TraceChunker::new(trace, 1_000_000));
        assert_eq!(collect_packets(&mut src).unwrap(), want);
        assert_eq!(src.rewinds_refused(), 0);
        assert!(matches!(
            src.rewind(),
            Err(SourceError::RewindUnsupported("NoRewindSource"))
        ));
        assert!(matches!(
            src.rewind(),
            Err(SourceError::RewindUnsupported("NoRewindSource"))
        ));
        assert_eq!(src.rewinds_refused(), 2);
        // The refusal leaves the stream itself untouched: still
        // drained, recoverable.
        assert!(src.next_chunk().unwrap().is_none());
        let mut inner = src.into_inner();
        inner.rewind().unwrap();
        assert_eq!(collect_packets(&mut inner).unwrap(), want);
    }
}
