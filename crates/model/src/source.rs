//! Streaming packet sources: time-binned chunked ingest.
//!
//! The MAWILab service labels 15-minute traces from a multi-year
//! archive; materialising a whole multi-GB archive day as one
//! `Vec<Packet>` does not scale. A [`PacketSource`] instead yields the
//! trace as a sequence of time-binned [`PacketChunk`]s, so the peak
//! number of packets alive at any moment is bounded by one chunk.
//!
//! The trait *lends* each chunk (`next_chunk` returns `&PacketChunk`
//! borrowed from the source): the borrow ends before the next chunk
//! can be requested, so a consumer cannot accidentally accumulate the
//! whole trace — constant packet memory is enforced by the API shape,
//! not by convention. Sources reuse one internal buffer between
//! chunks.
//!
//! Chunk boundaries are aligned to the trace's nominal capture window
//! (`meta.window().start_us`) at a configurable bin width. The
//! default, [`DEFAULT_CHUNK_US`], matches the coarsest detector
//! analysis bin (the KL detector's 5-second histogram bin), so every
//! detector time bin is covered by whole chunks.
//!
//! Packets must arrive in non-decreasing timestamp order (MAWI pcap
//! files and the synth generator both guarantee this). Packets
//! stamped *before* the nominal window are folded into the first
//! chunk; packets after the nominal end simply extend the chunk
//! sequence — binning never drops traffic.

use crate::packet::Packet;
use crate::pcap::PcapError;
use crate::trace::{TimeWindow, Trace, TraceMeta};
use std::fmt;

/// Default chunk width: 5 s, the detectors' coarsest analysis bin.
pub const DEFAULT_CHUNK_US: u64 = 5_000_000;

/// One time bin's worth of packets.
#[derive(Debug, Clone)]
pub struct PacketChunk {
    /// The time bin this chunk covers, `[start, end)` µs. Packets
    /// stamped before the trace's nominal window are folded into the
    /// first chunk, so `window` is nominal, not a bounding box.
    pub window: TimeWindow,
    /// The packets of the bin, in arrival order.
    pub packets: Vec<Packet>,
}

impl Default for PacketChunk {
    fn default() -> Self {
        PacketChunk {
            window: TimeWindow::new(0, 0),
            packets: Vec::new(),
        }
    }
}

impl PacketChunk {
    /// Number of packets in the chunk.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the chunk holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Errors produced while draining a packet source.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying pcap stream failed.
    Pcap(PcapError),
    /// The source cannot rewind for a second pass.
    RewindUnsupported(&'static str),
    /// A rewound source did not replay the same stream: the second
    /// pass saw a different chunk or packet count than the first.
    /// Two-pass consumers must fail here — with diverging streams the
    /// extraction pass would silently pair pass-2 traffic with pass-1
    /// alarms and produce wrong labels.
    ReplayDiverged {
        /// Chunks drained on the first pass.
        pass1_chunks: usize,
        /// Packets drained on the first pass.
        pass1_packets: u64,
        /// Chunks drained after the rewind.
        pass2_chunks: usize,
        /// Packets drained after the rewind.
        pass2_packets: u64,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Pcap(e) => write!(f, "packet source error: {e}"),
            SourceError::RewindUnsupported(what) => {
                write!(f, "source `{what}` does not support rewinding")
            }
            SourceError::ReplayDiverged {
                pass1_chunks,
                pass1_packets,
                pass2_chunks,
                pass2_packets,
            } => write!(
                f,
                "rewound source replayed a different stream: \
                 pass 1 saw {pass1_packets} packets in {pass1_chunks} chunks, \
                 pass 2 saw {pass2_packets} packets in {pass2_chunks} chunks"
            ),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<PcapError> for SourceError {
    fn from(e: PcapError) -> Self {
        SourceError::Pcap(e)
    }
}

/// A time-binned stream of packets.
///
/// The pipeline drains a source twice (detection pass, then
/// extraction/labeling pass), so sources must support [`rewind`].
///
/// [`rewind`]: PacketSource::rewind
pub trait PacketSource {
    /// Metadata of the trace being streamed.
    fn meta(&self) -> &TraceMeta;

    /// Bin width of the emitted chunks, microseconds.
    fn bin_us(&self) -> u64;

    /// Lends the next chunk, or `None` at end of stream. The chunk
    /// borrow ends when the source is next touched; sources reuse the
    /// buffer, so callers must copy anything they need to keep.
    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError>;

    /// Restarts the stream from the beginning for another pass.
    fn rewind(&mut self) -> Result<(), SourceError>;
}

/// Index of the chunk bin a timestamp falls into, relative to the
/// nominal window start (pre-window timestamps fold into bin 0).
pub fn chunk_index(window_start_us: u64, bin_us: u64, ts_us: u64) -> u64 {
    ts_us.saturating_sub(window_start_us) / bin_us.max(1)
}

/// Nominal window of chunk bin `k`.
pub fn chunk_window(window_start_us: u64, bin_us: u64, k: u64) -> TimeWindow {
    let start = window_start_us + k * bin_us;
    TimeWindow::new(start, start + bin_us)
}

/// Drains a source from its current position, concatenating every
/// remaining chunk into one packet vector. The equivalence oracle of
/// the streaming test suites: `collect_packets(source)` must equal the
/// batch-materialised trace for any chunk width.
pub fn collect_packets<S: PacketSource + ?Sized>(
    source: &mut S,
) -> Result<Vec<Packet>, SourceError> {
    let mut out = Vec::new();
    while let Some(chunk) = source.next_chunk()? {
        out.extend_from_slice(&chunk.packets);
    }
    Ok(out)
}

/// [`PacketSource`] over an in-memory [`Trace`].
///
/// This is the adapter that lets batch-held traces (tests, the synth
/// generator, benches) flow through the streaming pipeline without
/// temp files. The source owns the trace, but consumers still only
/// ever see one chunk at a time.
#[derive(Debug, Clone)]
pub struct TraceChunker {
    trace: Trace,
    bin_us: u64,
    pos: usize,
    buf: PacketChunk,
}

impl TraceChunker {
    /// Chunks a trace at `bin_us`-wide time bins.
    pub fn new(trace: Trace, bin_us: u64) -> Self {
        assert!(bin_us > 0, "chunk bin width must be positive");
        TraceChunker {
            trace,
            bin_us,
            pos: 0,
            buf: PacketChunk::default(),
        }
    }

    /// The wrapped trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Recovers the wrapped trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl PacketSource for TraceChunker {
    fn meta(&self) -> &TraceMeta {
        &self.trace.meta
    }

    fn bin_us(&self) -> u64 {
        self.bin_us
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        let packets = &self.trace.packets;
        if self.pos >= packets.len() {
            return Ok(None);
        }
        let start_us = self.trace.meta.window().start_us;
        let k = chunk_index(start_us, self.bin_us, packets[self.pos].ts_us);
        let begin = self.pos;
        let mut end = self.pos;
        while end < packets.len() && chunk_index(start_us, self.bin_us, packets[end].ts_us) <= k {
            end += 1;
        }
        self.pos = end;
        self.buf.window = chunk_window(start_us, self.bin_us, k);
        self.buf.packets.clear();
        self.buf.packets.extend_from_slice(&packets[begin..end]);
        Ok(Some(&self.buf))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.pos = 0;
        self.buf = PacketChunk::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::trace::TraceDate;
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, d)
    }

    fn trace_with_offsets(offsets_us: &[u64]) -> Trace {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let base = meta.window().start_us;
        let packets: Vec<Packet> = offsets_us
            .iter()
            .map(|&o| Packet::udp(base + o, ip(1), 1, ip(2), 2, 100))
            .collect();
        Trace::new(meta, packets)
    }

    #[test]
    fn chunks_partition_the_trace_in_order() {
        let trace = trace_with_offsets(&[0, 1, 2_000_000, 2_500_000, 9_000_000]);
        let total = trace.len();
        let mut src = TraceChunker::new(trace, 1_000_000);
        let mut seen = 0usize;
        let mut last_window_start = 0;
        while let Some(chunk) = src.next_chunk().unwrap() {
            assert!(!chunk.is_empty(), "empty chunk emitted");
            assert!(chunk.window.start_us >= last_window_start);
            last_window_start = chunk.window.start_us;
            for p in &chunk.packets {
                assert!(chunk.window.contains(p.ts_us));
            }
            seen += chunk.len();
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn empty_bins_are_skipped_not_emitted() {
        let trace = trace_with_offsets(&[0, 9_000_000]);
        let mut src = TraceChunker::new(trace, 1_000_000);
        let mut chunks = 0;
        while let Some(c) = src.next_chunk().unwrap() {
            assert_eq!(c.len(), 1);
            chunks += 1;
        }
        assert_eq!(chunks, 2);
    }

    #[test]
    fn rewind_replays_identically() {
        let trace = trace_with_offsets(&[0, 1, 5_500_000, 7_000_000]);
        let mut src = TraceChunker::new(trace, 2_000_000);
        let mut first: Vec<(TimeWindow, usize)> = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            first.push((c.window, c.len()));
        }
        src.rewind().unwrap();
        let mut second: Vec<(TimeWindow, usize)> = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            second.push((c.window, c.len()));
        }
        assert_eq!(first, second);
    }

    #[test]
    fn pre_window_packets_fold_into_first_chunk() {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let base = meta.window().start_us;
        let packets = vec![
            Packet::udp(base - 10, ip(1), 1, ip(2), 2, 100), // clock skew
            Packet::udp(base + 5, ip(1), 1, ip(2), 2, 100),
        ];
        let trace = Trace::new(meta, packets);
        let mut src = TraceChunker::new(trace, 1_000_000);
        let c = src.next_chunk().unwrap().unwrap();
        assert_eq!(c.len(), 2);
        assert!(src.next_chunk().unwrap().is_none());
    }

    #[test]
    fn chunk_index_and_window_agree() {
        for ts in [0u64, 1, 999_999, 1_000_000, 5_432_109] {
            let k = chunk_index(0, 1_000_000, ts);
            assert!(chunk_window(0, 1_000_000, k).contains(ts));
        }
        // Pre-window folds to bin 0.
        assert_eq!(chunk_index(1_000, 500, 10), 0);
    }

    #[test]
    fn collect_packets_reassembles_the_trace() {
        let trace = trace_with_offsets(&[0, 1, 2_000_000, 2_500_000, 9_000_000]);
        let want = trace.packets.clone();
        let mut src = TraceChunker::new(trace, 1_000_000);
        assert_eq!(collect_packets(&mut src).unwrap(), want);
        // Drained source yields nothing more; after rewind, everything.
        assert!(collect_packets(&mut src).unwrap().is_empty());
        src.rewind().unwrap();
        assert_eq!(collect_packets(&mut src).unwrap(), want);
    }

    #[test]
    fn empty_trace_yields_no_chunks() {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let mut src = TraceChunker::new(Trace::new(meta, vec![]), DEFAULT_CHUNK_US);
        assert!(src.next_chunk().unwrap().is_none());
    }
}
