//! Packet records: the smallest unit of traffic the pipeline reasons
//! about.
//!
//! MAWI traces are payload-stripped, so a packet is fully described by
//! its timestamp, IPv4 endpoints, transport protocol, ports (or ICMP
//! type/code), TCP flags and wire length — exactly the fields the
//! paper's detectors and Table-1 heuristics consume.

use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a packet.
///
/// Only the protocols the MAWILab heuristics distinguish get their own
/// variant; everything else is carried verbatim as [`Protocol::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
    /// ICMP (IP protocol 1).
    Icmp,
    /// Any other IP protocol, identified by its protocol number.
    Other(u8),
}

impl Protocol {
    /// IP protocol number for this protocol.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Builds a [`Protocol`] from an IP protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }

    /// True for protocols that carry 16-bit port numbers.
    pub fn has_ports(self) -> bool {
        matches!(self, Protocol::Tcp | Protocol::Udp)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// TCP control-flag bitfield (RFC 793 low byte of the flags word).
///
/// The Table-1 heuristics test SYN/RST/FIN ratios, so flags are kept
/// per-packet rather than per-flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;
    /// URG flag bit.
    pub const URG: u8 = 0x20;

    /// No flags set (e.g. for non-TCP packets).
    pub const fn empty() -> Self {
        TcpFlags(0)
    }

    /// A bare SYN (connection attempt).
    pub const fn syn() -> Self {
        TcpFlags(Self::SYN)
    }

    /// SYN+ACK (connection acceptance).
    pub const fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// A bare ACK (established-connection data/ack segment).
    pub const fn ack() -> Self {
        TcpFlags(Self::ACK)
    }

    /// RST (reset), as emitted by closed ports under scanning.
    pub const fn rst() -> Self {
        TcpFlags(Self::RST | Self::ACK)
    }

    /// FIN+ACK (graceful teardown).
    pub const fn fin_ack() -> Self {
        TcpFlags(Self::FIN | Self::ACK)
    }

    /// Whether `flag` (one of the associated constants) is set.
    pub fn has(self, flag: u8) -> bool {
        self.0 & flag != 0
    }

    /// True if SYN is set (with or without ACK).
    pub fn is_syn(self) -> bool {
        self.has(Self::SYN)
    }

    /// True if RST is set.
    pub fn is_rst(self) -> bool {
        self.has(Self::RST)
    }

    /// True if FIN is set.
    pub fn is_fin(self) -> bool {
        self.has(Self::FIN)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::SYN, 'S'),
            (Self::ACK, 'A'),
            (Self::FIN, 'F'),
            (Self::RST, 'R'),
            (Self::PSH, 'P'),
            (Self::URG, 'U'),
        ];
        let mut any = false;
        for (bit, c) in names {
            if self.has(bit) {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// One captured packet.
///
/// Timestamps are **microseconds since the Unix epoch** so that traces
/// from different archive days compare directly. For ICMP packets the
/// `sport`/`dport` fields carry the ICMP type and code respectively
/// (a common trick in flow records, also used by the MAWI tooling);
/// [`Packet::icmp_type`] / [`Packet::icmp_code`] expose them readably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp, µs since the Unix epoch.
    pub ts_us: u64,
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Source port (TCP/UDP) or ICMP type.
    pub sport: u16,
    /// Destination port (TCP/UDP) or ICMP code.
    pub dport: u16,
    /// Wire length in bytes (IP header + payload as captured).
    pub len: u16,
    /// Transport protocol.
    pub proto: Protocol,
    /// TCP flags; `TcpFlags::empty()` for non-TCP packets.
    pub flags: TcpFlags,
}

impl Packet {
    /// Creates a TCP packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        ts_us: u64,
        src: Ipv4Addr,
        sport: u16,
        dst: Ipv4Addr,
        dport: u16,
        flags: TcpFlags,
        len: u16,
    ) -> Self {
        Packet {
            ts_us,
            src,
            dst,
            sport,
            dport,
            len,
            proto: Protocol::Tcp,
            flags,
        }
    }

    /// Creates a UDP packet.
    pub fn udp(ts_us: u64, src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, len: u16) -> Self {
        Packet {
            ts_us,
            src,
            dst,
            sport,
            dport,
            len,
            proto: Protocol::Udp,
            flags: TcpFlags::empty(),
        }
    }

    /// Creates an ICMP packet with the given type and code.
    pub fn icmp(ts_us: u64, src: Ipv4Addr, dst: Ipv4Addr, ty: u8, code: u8, len: u16) -> Self {
        Packet {
            ts_us,
            src,
            dst,
            sport: ty as u16,
            dport: code as u16,
            len,
            proto: Protocol::Icmp,
            flags: TcpFlags::empty(),
        }
    }

    /// ICMP message type, if this is an ICMP packet.
    pub fn icmp_type(&self) -> Option<u8> {
        (self.proto == Protocol::Icmp).then_some(self.sport as u8)
    }

    /// ICMP message code, if this is an ICMP packet.
    pub fn icmp_code(&self) -> Option<u8> {
        (self.proto == Protocol::Icmp).then_some(self.dport as u8)
    }

    /// Source port if the protocol carries ports, else `None`.
    pub fn src_port(&self) -> Option<u16> {
        self.proto.has_ports().then_some(self.sport)
    }

    /// Destination port if the protocol carries ports, else `None`.
    pub fn dst_port(&self) -> Option<u16> {
        self.proto.has_ports().then_some(self.dport)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} {} {}:{} > {}:{} [{}] len={}",
            self.ts_us as f64 / 1e6,
            self.proto,
            self.src,
            self.sport,
            self.dst,
            self.dport,
            self.flags,
            self.len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    #[test]
    fn protocol_number_round_trip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn protocol_variants_map_to_iana_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
        assert_eq!(Protocol::Icmp.number(), 1);
        assert_eq!(Protocol::from_number(47), Protocol::Other(47));
    }

    #[test]
    fn only_tcp_udp_have_ports() {
        assert!(Protocol::Tcp.has_ports());
        assert!(Protocol::Udp.has_ports());
        assert!(!Protocol::Icmp.has_ports());
        assert!(!Protocol::Other(47).has_ports());
    }

    #[test]
    fn tcp_flag_constructors() {
        assert!(TcpFlags::syn().is_syn());
        assert!(!TcpFlags::syn().has(TcpFlags::ACK));
        assert!(TcpFlags::syn_ack().is_syn());
        assert!(TcpFlags::syn_ack().has(TcpFlags::ACK));
        assert!(TcpFlags::rst().is_rst());
        assert!(TcpFlags::fin_ack().is_fin());
        assert!(!TcpFlags::empty().is_syn());
    }

    #[test]
    fn flags_display_is_compact() {
        assert_eq!(TcpFlags::syn_ack().to_string(), "SA");
        assert_eq!(TcpFlags::empty().to_string(), ".");
        assert_eq!(TcpFlags::rst().to_string(), "AR");
    }

    #[test]
    fn icmp_type_code_accessors() {
        let p = Packet::icmp(0, ip(10, 0, 0, 1), ip(10, 0, 0, 2), 8, 0, 64);
        assert_eq!(p.icmp_type(), Some(8));
        assert_eq!(p.icmp_code(), Some(0));
        assert_eq!(p.src_port(), None);
        assert_eq!(p.dst_port(), None);
    }

    #[test]
    fn tcp_ports_visible_icmp_fields_hidden() {
        let p = Packet::tcp(
            5,
            ip(1, 2, 3, 4),
            1234,
            ip(5, 6, 7, 8),
            80,
            TcpFlags::syn(),
            40,
        );
        assert_eq!(p.src_port(), Some(1234));
        assert_eq!(p.dst_port(), Some(80));
        assert_eq!(p.icmp_type(), None);
    }

    #[test]
    fn packet_is_small() {
        // The archive simulator holds tens of millions of these; keep
        // the record within two cache-line quarters.
        assert!(std::mem::size_of::<Packet>() <= 32);
    }

    #[test]
    fn display_formats_endpoints() {
        let p = Packet::udp(
            1_000_000,
            ip(192, 0, 2, 1),
            53,
            ip(198, 51, 100, 7),
            3456,
            120,
        );
        let s = p.to_string();
        assert!(s.contains("192.0.2.1:53"), "{s}");
        assert!(s.contains("udp"), "{s}");
    }
}
