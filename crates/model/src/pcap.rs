//! Classic libpcap (`.pcap`) serialisation, from scratch.
//!
//! The MAWI archive distributes payload-stripped pcap files. To stay
//! interoperable with standard tooling (tcpdump/Wireshark) without an
//! external pcap crate, this module implements the classic format
//! directly: 24-byte global header (magic `0xa1b2c3d4`, microsecond
//! timestamps, link type Ethernet) and 16-byte per-record headers.
//! Packets are wrapped in synthesised Ethernet + IPv4 + TCP/UDP/ICMP
//! headers on write, and parsed back into [`Packet`] records on read
//! (unknown transports are preserved as [`Protocol::Other`]).
//!
//! The reader accepts both byte orders (files written on opposite-
//! endian machines flip the magic) and skips over truncated or
//! non-IPv4 records rather than failing the whole file, mirroring how
//! real capture tooling behaves on damaged archives.

use crate::packet::{Packet, Protocol, TcpFlags};
use crate::source::{chunk_index, chunk_window, PacketChunk, PacketSource, SourceError};
use crate::trace::{Trace, TraceMeta};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::Ipv4Addr;

const MAGIC_US: u32 = 0xa1b2_c3d4;
const MAGIC_US_SWAPPED: u32 = 0xd4c3_b2a1;
const LINKTYPE_ETHERNET: u32 = 1;
const ETH_HDR: usize = 14;
const IPV4_HDR: usize = 20;
const GLOBAL_HDR_LEN: u64 = 24;

/// Largest captured record the reader will materialise. MAWI traces
/// are payload-stripped, so real records are tiny; a length beyond
/// this is a corrupt header, and honouring it would turn one flipped
/// bit into a multi-GB allocation. Oversized records are skipped (and
/// counted) instead.
pub const MAX_RECORD_BYTES: usize = 256 * 1024;

/// Errors produced by the pcap reader.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// File does not start with a known pcap magic number.
    BadMagic(u32),
    /// File uses a link type other than Ethernet.
    UnsupportedLinkType(u32),
    /// A zero chunk width was requested for streaming reads.
    InvalidChunkWidth(u64),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::UnsupportedLinkType(t) => write!(f, "unsupported pcap link type {t}"),
            PcapError::InvalidChunkWidth(w) => {
                write!(f, "chunk bin width must be positive, got {w}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Writes a trace as a classic pcap file.
///
/// Each packet is framed as Ethernet/IPv4/L4 with correct lengths; the
/// record's `orig_len` carries the packet's true wire length so that
/// byte counts survive the round trip even though payload bytes are
/// not materialised (MAWI traces are payload-stripped anyway).
pub fn write_pcap<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    let mut hdr = [0u8; 24];
    hdr[0..4].copy_from_slice(&MAGIC_US.to_le_bytes());
    hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
    hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
                                                    // thiszone, sigfigs = 0
    hdr[16..20].copy_from_slice(&65_535u32.to_le_bytes()); // snaplen
    hdr[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    w.write_all(&hdr)?;

    let mut frame = Vec::with_capacity(ETH_HDR + IPV4_HDR + 20);
    for p in &trace.packets {
        frame.clear();
        encode_frame(p, &mut frame);
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&((p.ts_us / 1_000_000) as u32).to_le_bytes());
        rec[4..8].copy_from_slice(&((p.ts_us % 1_000_000) as u32).to_le_bytes());
        rec[8..12].copy_from_slice(&(frame.len() as u32).to_le_bytes());
        let orig = (p.len as usize + ETH_HDR).max(frame.len()) as u32;
        rec[12..16].copy_from_slice(&orig.to_le_bytes());
        w.write_all(&rec)?;
        w.write_all(&frame)?;
    }
    Ok(())
}

fn encode_frame(p: &Packet, out: &mut Vec<u8>) {
    // Ethernet II: zeroed MACs, EtherType IPv4.
    out.extend_from_slice(&[0u8; 12]);
    out.extend_from_slice(&0x0800u16.to_be_bytes());

    let l4 = match p.proto {
        Protocol::Tcp => 20,
        Protocol::Udp => 8,
        Protocol::Icmp => 8,
        Protocol::Other(_) => 0,
    };
    let total_len = (IPV4_HDR + l4) as u16;

    // IPv4 header.
    let ip_start = out.len();
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&total_len.to_be_bytes());
    out.extend_from_slice(&[0, 0, 0x40, 0]); // id, flags: DF
    out.push(64); // TTL
    out.push(p.proto.number());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&p.src.octets());
    out.extend_from_slice(&p.dst.octets());
    let csum = ipv4_checksum(&out[ip_start..ip_start + IPV4_HDR]);
    out[ip_start + 10..ip_start + 12].copy_from_slice(&csum.to_be_bytes());

    match p.proto {
        Protocol::Tcp => {
            out.extend_from_slice(&p.sport.to_be_bytes());
            out.extend_from_slice(&p.dport.to_be_bytes());
            out.extend_from_slice(&[0u8; 8]); // seq, ack
            out.push(0x50); // data offset 5
            out.push(p.flags.0);
            out.extend_from_slice(&[0xff, 0xff]); // window
            out.extend_from_slice(&[0, 0, 0, 0]); // checksum, urgent
        }
        Protocol::Udp => {
            out.extend_from_slice(&p.sport.to_be_bytes());
            out.extend_from_slice(&p.dport.to_be_bytes());
            out.extend_from_slice(&8u16.to_be_bytes()); // length
            out.extend_from_slice(&[0, 0]); // checksum
        }
        Protocol::Icmp => {
            out.push(p.sport as u8); // type
            out.push(p.dport as u8); // code
            out.extend_from_slice(&[0u8; 6]); // checksum + rest
        }
        Protocol::Other(_) => {}
    }
}

fn ipv4_checksum(hdr: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in hdr.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Reads a classic pcap file back into packets.
///
/// `meta` supplies the trace metadata (the pcap format does not carry
/// it). Records that are truncated, non-Ethernet-II/IPv4, or otherwise
/// unparsable are skipped; the count of skipped records is returned
/// alongside the trace.
pub fn read_pcap<R: Read>(mut r: R, meta: TraceMeta) -> Result<(Trace, usize), PcapError> {
    let swapped = read_global_header(&mut r)?;
    let mut packets = Vec::new();
    let mut skipped = 0usize;
    let mut frame = Vec::new();
    loop {
        match read_record(&mut r, swapped, &mut frame)? {
            RecordRead::Packet(p) => packets.push(p),
            RecordRead::Skipped => skipped += 1,
            RecordRead::Truncated => {
                skipped += 1;
                break;
            }
            RecordRead::Eof => break,
        }
    }
    Ok((Trace::new(meta, packets), skipped))
}

/// Parses the 24-byte global header; returns whether the file's byte
/// order is swapped relative to the host's little-endian view.
fn read_global_header<R: Read>(r: &mut R) -> Result<bool, PcapError> {
    let mut hdr = [0u8; 24];
    r.read_exact(&mut hdr)?;
    let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let swapped = match magic {
        MAGIC_US => false,
        MAGIC_US_SWAPPED => true,
        other => return Err(PcapError::BadMagic(other)),
    };
    let linktype = read_u32(swapped, &hdr[20..24]);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::UnsupportedLinkType(linktype));
    }
    Ok(swapped)
}

fn read_u32(swapped: bool, b: &[u8]) -> u32 {
    let arr = [b[0], b[1], b[2], b[3]];
    if swapped {
        u32::from_be_bytes(arr)
    } else {
        u32::from_le_bytes(arr)
    }
}

/// Outcome of reading one pcap record.
enum RecordRead {
    /// A parsed IPv4 packet.
    Packet(Packet),
    /// A record that was present but unusable (non-IPv4, truncated
    /// headers, or an oversized `incl_len`).
    Skipped,
    /// The stream ended inside a record header or frame: a truncated
    /// archive tail. The partial record is unusable but everything
    /// before it is good — degrade to a counted skip at end of
    /// stream, the way capture tooling treats a cut-off file.
    Truncated,
    /// Clean end of stream (EOF at a record-header boundary).
    Eof,
}

/// Reads up to `buf.len()` bytes, looping over short reads; returns
/// how many bytes arrived before EOF.
fn read_fill<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Reads one record. `frame` is a reusable scratch buffer. A record
/// whose `incl_len` exceeds [`MAX_RECORD_BYTES`] is discarded without
/// being materialised — a corrupt length field must not drive a
/// multi-GB allocation. A stream that ends mid-header or mid-frame
/// yields [`RecordRead::Truncated`], never an error: one cut-off
/// archive day must degrade, not take down a labeling sweep.
fn read_record<R: Read>(
    r: &mut R,
    swapped: bool,
    frame: &mut Vec<u8>,
) -> Result<RecordRead, PcapError> {
    let mut rec = [0u8; 16];
    match read_fill(r, &mut rec)? {
        0 => return Ok(RecordRead::Eof),
        16 => {}
        _ => return Ok(RecordRead::Truncated),
    }
    let ts_sec = read_u32(swapped, &rec[0..4]) as u64;
    let ts_usec = read_u32(swapped, &rec[4..8]) as u64;
    let incl_len = read_u32(swapped, &rec[8..12]) as usize;
    let orig_len = read_u32(swapped, &rec[12..16]) as usize;
    if incl_len > MAX_RECORD_BYTES {
        // Discard without allocating. If the stream ends mid-discard
        // the record was truncated garbage anyway; the next header
        // read reports EOF.
        io::copy(&mut r.by_ref().take(incl_len as u64), &mut io::sink())?;
        return Ok(RecordRead::Skipped);
    }
    frame.resize(incl_len, 0);
    if read_fill(r, frame)? < incl_len {
        return Ok(RecordRead::Truncated);
    }
    Ok(
        match decode_frame(frame, ts_sec * 1_000_000 + ts_usec, orig_len) {
            Some(p) => RecordRead::Packet(p),
            None => RecordRead::Skipped,
        },
    )
}

/// Streaming pcap reader: a [`PacketSource`] that yields time-binned
/// [`PacketChunk`]s without ever materialising the whole trace.
///
/// Records must be in non-decreasing timestamp order (MAWI archive
/// files are). A packet stamped earlier than the current bin — minor
/// capture-clock jitter — is folded into the current chunk rather
/// than reordered. Damaged records are skipped and counted exactly as
/// in [`read_pcap`]; peak packet memory is one chunk plus one
/// look-ahead packet.
pub struct StreamingPcapReader<R: Read + Seek> {
    r: R,
    meta: TraceMeta,
    swapped: bool,
    bin_us: u64,
    buf: PacketChunk,
    frame: Vec<u8>,
    pending: Option<Packet>,
    skipped: usize,
    packets: u64,
    truncated: bool,
    done: bool,
}

impl<R: Read + Seek> StreamingPcapReader<R> {
    /// Opens a pcap stream, validating the global header. `meta`
    /// supplies the archive metadata (the format does not carry it),
    /// `bin_us` the chunk width. A zero `bin_us` is a typed
    /// [`PcapError::InvalidChunkWidth`], not a panic.
    pub fn new(mut r: R, meta: TraceMeta, bin_us: u64) -> Result<Self, PcapError> {
        if bin_us == 0 {
            return Err(PcapError::InvalidChunkWidth(bin_us));
        }
        let swapped = read_global_header(&mut r)?;
        Ok(StreamingPcapReader {
            r,
            meta,
            swapped,
            bin_us,
            buf: PacketChunk::default(),
            frame: Vec::new(),
            pending: None,
            skipped: 0,
            packets: 0,
            truncated: false,
            done: false,
        })
    }

    /// Records skipped so far (damaged, non-IPv4, oversized, or the
    /// truncated tail record).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Packets yielded so far.
    pub fn packets_read(&self) -> u64 {
        self.packets
    }

    /// True when the stream ended inside a record — a cut-off archive
    /// tail that was degraded to end-of-stream rather than an error.
    pub fn truncated_tail(&self) -> bool {
        self.truncated
    }

    /// Reads records until a parsable packet, EOF, or an error.
    fn next_packet(&mut self) -> Result<Option<Packet>, PcapError> {
        loop {
            match read_record(&mut self.r, self.swapped, &mut self.frame)? {
                RecordRead::Packet(p) => return Ok(Some(p)),
                RecordRead::Skipped => self.skipped += 1,
                RecordRead::Truncated => {
                    self.skipped += 1;
                    self.truncated = true;
                    return Ok(None);
                }
                RecordRead::Eof => return Ok(None),
            }
        }
    }
}

impl<R: Read + Seek> PacketSource for StreamingPcapReader<R> {
    fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    fn bin_us(&self) -> u64 {
        self.bin_us
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        if self.done {
            return Ok(None);
        }
        let first = match self.pending.take() {
            Some(p) => p,
            None => match self.next_packet()? {
                Some(p) => p,
                None => {
                    self.done = true;
                    return Ok(None);
                }
            },
        };
        let start_us = self.meta.window().start_us;
        let k = chunk_index(start_us, self.bin_us, first.ts_us);
        self.buf.window = chunk_window(start_us, self.bin_us, k);
        self.buf.packets.clear();
        self.buf.packets.push(first);
        loop {
            match self.next_packet()? {
                Some(p) => {
                    if chunk_index(start_us, self.bin_us, p.ts_us) <= k {
                        self.buf.packets.push(p);
                    } else {
                        self.pending = Some(p);
                        break;
                    }
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        self.packets += self.buf.packets.len() as u64;
        Ok(Some(&self.buf))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.r
            .seek(SeekFrom::Start(GLOBAL_HDR_LEN))
            .map_err(|e| SourceError::Pcap(PcapError::Io(e)))?;
        self.buf = PacketChunk::default();
        self.pending = None;
        self.skipped = 0;
        self.packets = 0;
        self.truncated = false;
        self.done = false;
        Ok(())
    }
}

fn decode_frame(frame: &[u8], ts_us: u64, orig_len: usize) -> Option<Packet> {
    if frame.len() < ETH_HDR + IPV4_HDR {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return None;
    }
    let ip = &frame[ETH_HDR..];
    if ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = ((ip[0] & 0x0f) as usize) * 4;
    if ihl < IPV4_HDR || ip.len() < ihl {
        return None;
    }
    let proto = Protocol::from_number(ip[9]);
    let src = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
    let dst = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
    let l4 = &ip[ihl..];
    let (sport, dport, flags) = match proto {
        Protocol::Tcp if l4.len() >= 14 => (
            u16::from_be_bytes([l4[0], l4[1]]),
            u16::from_be_bytes([l4[2], l4[3]]),
            TcpFlags(l4[13]),
        ),
        Protocol::Udp if l4.len() >= 4 => (
            u16::from_be_bytes([l4[0], l4[1]]),
            u16::from_be_bytes([l4[2], l4[3]]),
            TcpFlags::empty(),
        ),
        Protocol::Icmp if l4.len() >= 2 => (l4[0] as u16, l4[1] as u16, TcpFlags::empty()),
        Protocol::Other(_) => (0, 0, TcpFlags::empty()),
        _ => return None, // declared transport but truncated header
    };
    let len = orig_len.saturating_sub(ETH_HDR).min(u16::MAX as usize) as u16;
    Some(Packet {
        ts_us,
        src,
        dst,
        sport,
        dport,
        len,
        proto,
        flags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceDate;
    use std::io::Cursor;

    fn ip(d: u8) -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, d)
    }

    fn sample_trace() -> Trace {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let base = meta.window().start_us;
        Trace::new(
            meta,
            vec![
                Packet::tcp(base, ip(1), 1234, ip(2), 80, TcpFlags::syn(), 60),
                Packet::udp(base + 1, ip(3), 53, ip(4), 9999, 512),
                Packet::icmp(base + 2, ip(5), ip(6), 8, 0, 84),
                Packet {
                    ts_us: base + 3,
                    src: ip(7),
                    dst: ip(8),
                    sport: 0,
                    dport: 0,
                    len: 40,
                    proto: Protocol::Other(47),
                    flags: TcpFlags::empty(),
                },
            ],
        )
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let (back, skipped) = read_pcap(Cursor::new(&buf), trace.meta.clone()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.packets, trace.packets);
    }

    #[test]
    fn header_magic_and_linktype() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample_trace()).unwrap();
        assert_eq!(
            u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
            MAGIC_US
        );
        assert_eq!(
            u32::from_le_bytes([buf[20], buf[21], buf[22], buf[23]]),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn rejects_garbage_magic() {
        let garbage = vec![0u8; 24];
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        match read_pcap(Cursor::new(&garbage), meta) {
            Err(PcapError::BadMagic(0)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_ethernet_linktype() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &sample_trace()).unwrap();
        buf[20..24].copy_from_slice(&101u32.to_le_bytes()); // LINKTYPE_RAW
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        assert!(matches!(
            read_pcap(Cursor::new(&buf), meta),
            Err(PcapError::UnsupportedLinkType(101))
        ));
    }

    #[test]
    fn skips_damaged_records_keeps_good_ones() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        // Corrupt the EtherType of the first record (offset 24 global
        // header + 16 record header + 12 MACs).
        buf[24 + 16 + 12] = 0x86; // 0x86dd = IPv6
        buf[24 + 16 + 13] = 0xdd;
        let (back, skipped) = read_pcap(Cursor::new(&buf), trace.meta.clone()).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(back.packets.len(), trace.packets.len() - 1);
    }

    #[test]
    fn truncated_file_degrades_to_counted_skip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3); // cut mid-frame of the last record
        let meta = trace.meta.clone();
        let (back, skipped) = read_pcap(Cursor::new(&buf), meta).unwrap();
        assert_eq!(skipped, 1, "truncated tail must be counted");
        assert_eq!(back.packets, trace.packets[..trace.packets.len() - 1]);
    }

    #[test]
    fn zero_chunk_width_is_a_typed_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        assert!(matches!(
            StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), 0),
            Err(PcapError::InvalidChunkWidth(0))
        ));
    }

    #[test]
    fn ipv4_checksum_validates() {
        // Checksum over a header containing its own checksum = 0.
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let ip_hdr = &buf[24 + 16 + ETH_HDR..24 + 16 + ETH_HDR + IPV4_HDR];
        assert_eq!(ipv4_checksum(ip_hdr), 0);
    }

    #[test]
    fn orig_len_preserves_wire_length() {
        // A 512-byte UDP packet is framed much smaller, but the wire
        // length must round-trip via orig_len.
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let (back, _) = read_pcap(Cursor::new(&buf), trace.meta.clone()).unwrap();
        assert_eq!(back.packets[1].len, 512);
    }

    #[test]
    fn empty_trace_writes_header_only() {
        let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
        let trace = Trace::new(meta.clone(), vec![]);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        assert_eq!(buf.len(), 24);
        let (back, skipped) = read_pcap(Cursor::new(&buf), meta).unwrap();
        assert!(back.is_empty());
        assert_eq!(skipped, 0);
    }
}
