//! # mawilab-model
//!
//! Traffic-data substrate for the MAWILab reproduction: packet records,
//! unidirectional/bidirectional flow keys and tables, trace containers
//! with archive metadata, traffic feature rules (4-tuples with
//! wildcards), and a from-scratch classic libpcap reader/writer.
//!
//! Everything downstream (detectors, similarity estimator, labeling)
//! consumes these types, so they are deliberately small, `Copy` where
//! possible, and free of external dependencies.
//!
//! ## Layout
//!
//! * [`packet`] — [`Packet`], [`Protocol`], [`TcpFlags`]: one 32-byte
//!   record per captured packet.
//! * [`flow`] — [`FlowKey`] / [`BiflowKey`] 5-tuples and [`FlowTable`],
//!   the dense packet→flow index both traffic granularities share.
//! * [`trace`] — [`Trace`] (time-sorted packets + [`TraceMeta`]) and
//!   [`TimeWindow`] intervals in microseconds.
//! * [`rule`] — [`TrafficRule`]: the `<srcIP, sport, dstIP, dport>`
//!   pattern with wildcards used by alarms and association rules.
//! * [`pcap`] — classic libpcap (`.pcap`) serialisation with
//!   synthesised Ethernet/IPv4/L4 headers, including the streaming
//!   [`StreamingPcapReader`].
//! * [`source`] — [`PacketSource`]/[`PacketChunk`]: time-binned
//!   chunked ingest with constant peak packet memory.

#![forbid(unsafe_code)]

pub mod flow;
pub mod packet;
pub mod pcap;
pub mod rule;
pub mod source;
pub mod trace;

pub use flow::{BiflowKey, FlowId, FlowKey, FlowTable, Granularity, ItemIndex};
pub use packet::{Packet, Protocol, TcpFlags};
pub use pcap::StreamingPcapReader;
pub use rule::TrafficRule;
pub use source::{
    chunk_index, chunk_window, collect_packets, ChunkConsumer, NoRewindSource, PacketChunk,
    PacketSource, SourceError, StreamTruthCollector, TaggedChunk, TaggedSource, TapSource,
    TraceChunker, DEFAULT_CHUNK_US,
};
pub use trace::{LinkEra, TimeWindow, Trace, TraceDate, TraceMeta};
