//! Label a week of the simulated archive and write the MAWILab
//! database files (CSV + admd-style XML), as the public site does
//! daily.
//!
//! ```sh
//! cargo run --release --example archive_labeling [-- output_dir]
//! ```

use mawilab::core::{MawilabPipeline, PipelineConfig};
use mawilab::label::output::{write_csv, write_xml};
use mawilab::label::MawilabLabel;
use mawilab::synth::archive::first_days_of_month;
use mawilab::synth::{ArchiveConfig, ArchiveSimulator};
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("mawilab-out"));
    std::fs::create_dir_all(&out_dir)?;

    let sim = ArchiveSimulator::new(ArchiveConfig::default());
    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    println!("writing database files to {}", out_dir.display());
    println!(
        "\n{:12} {:>8} {:>7} {:>10} {:>10} {:>7}",
        "day", "packets", "alarms", "anomalous", "suspicious", "notice"
    );
    for day in first_days_of_month(2005, 3, 7) {
        let lt = sim.generate(day);
        let report = pipeline.run(&lt.trace);

        let base = format!("{:04}{:02}{:02}", day.year, day.month, day.day);
        let csv = File::create(out_dir.join(format!("{base}_anomalies.csv")))?;
        write_csv(BufWriter::new(csv), &report.labeled.communities)?;
        let xml = File::create(out_dir.join(format!("{base}_anomalies.xml")))?;
        write_xml(BufWriter::new(xml), &base, &report.labeled.communities)?;

        println!(
            "{:12} {:>8} {:>7} {:>10} {:>10} {:>7}",
            day.to_string(),
            lt.trace.len(),
            report.alarm_count(),
            report.labeled.count(MawilabLabel::Anomalous),
            report.labeled.count(MawilabLabel::Suspicious),
            report.labeled.count(MawilabLabel::Notice),
        );
    }
    println!("\ndone — inspect the CSV/XML files for the published format");
    Ok(())
}
