//! Quickstart: label one synthetic MAWI-like trace.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a 60-second trace with a representative anomaly mix,
//! runs the full MAWILab pipeline (12 detector configurations →
//! similarity graph → Louvain communities → SCANN), and prints the
//! labeled anomalies with their association-rule summaries.

use mawilab::core::{MawilabPipeline, PipelineConfig};
use mawilab::label::MawilabLabel;
use mawilab::synth::{SynthConfig, TraceGenerator};

fn main() {
    let labeled_trace = TraceGenerator::new(SynthConfig::default().with_seed(7)).generate();
    println!(
        "trace {} — {} packets, {:.1}% injected anomalous traffic",
        labeled_trace.trace.meta.date,
        labeled_trace.trace.len(),
        labeled_trace.truth.anomalous_fraction() * 100.0
    );

    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    let report = pipeline.run(&labeled_trace.trace);

    println!(
        "\n{} alarms → {} communities ({} single) in {:?}",
        report.alarm_count(),
        report.community_count(),
        report.communities.single_count(),
        report.timings.total()
    );
    for label in [
        MawilabLabel::Anomalous,
        MawilabLabel::Suspicious,
        MawilabLabel::Notice,
    ] {
        println!("  {:10} {}", label.to_string(), report.labeled.count(label));
    }

    println!("\nanomalous communities:");
    for lc in report.labeled.anomalies() {
        println!("  {lc}");
    }

    println!("\nground truth for reference:");
    for a in labeled_trace.truth.anomalies() {
        println!("  {a}");
    }
}
