//! Granularity study: how packet / uniflow / biflow extraction
//! changes the similarity estimator's communities (paper §4.1,
//! Fig. 3 in miniature, plus the pcap round-trip in passing).
//!
//! ```sh
//! cargo run --release --example granularity_study
//! ```

use mawilab::detectors::{run_all, standard_configurations, TraceView};
use mawilab::label::summary::summarize_community;
use mawilab::model::pcap::{read_pcap, write_pcap};
use mawilab::model::{FlowTable, Granularity};
use mawilab::similarity::SimilarityEstimator;
use mawilab::synth::{SynthConfig, TraceGenerator};

fn main() {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(41)).generate();

    // Round-trip through our pcap writer first — the archive stores
    // pcap files, so the pipeline must survive serialisation.
    let mut buf = Vec::new();
    write_pcap(&mut buf, &lt.trace).expect("pcap write");
    let (trace, skipped) =
        read_pcap(std::io::Cursor::new(&buf), lt.trace.meta.clone()).expect("pcap read");
    assert_eq!(skipped, 0);
    println!(
        "pcap round-trip: {} packets, {:.1} MB on disk",
        trace.len(),
        buf.len() as f64 / 1e6
    );

    let flows = FlowTable::build(&trace.packets);
    let view = TraceView::new(&trace, &flows);
    let alarms = run_all(&standard_configurations(), &view);
    println!("{} alarms from 12 configurations\n", alarms.len());

    println!(
        "{:8} {:>12} {:>8} {:>12} {:>12} {:>12}",
        "gran.", "communities", "single", "max size", "rule deg.", "rule supp."
    );
    for granularity in [
        Granularity::Packet,
        Granularity::Uniflow,
        Granularity::Biflow,
    ] {
        let estimator = SimilarityEstimator {
            granularity,
            ..Default::default()
        };
        let communities = estimator.estimate(&view, alarms.clone());
        let sizes = communities.sizes();
        let max = sizes.iter().max().copied().unwrap_or(0);
        // Mean rule metrics over non-single communities (paper
        // Fig. 3(c)(d) exclude singles).
        let (mut deg, mut supp, mut n) = (0.0, 0.0, 0usize);
        for (c, &size) in sizes.iter().enumerate() {
            if size < 2 {
                continue;
            }
            let s = summarize_community(&view, &communities, c, 0.2);
            deg += s.rule_degree;
            supp += s.rule_support;
            n += 1;
        }
        println!(
            "{:8} {:>12} {:>8} {:>12} {:>12.2} {:>11.0}%",
            granularity.to_string(),
            communities.community_count(),
            communities.single_count(),
            max,
            if n > 0 { deg / n as f64 } else { 0.0 },
            if n > 0 { supp / n as f64 * 100.0 } else { 0.0 },
        );
    }
    println!("\npaper expectation: flows relate more alarms (fewer singles, bigger");
    println!("communities); packets give the most specific rules (highest degree).");
}
