//! Worm-outbreak day: how the combiner behaves under Sasser.
//!
//! ```sh
//! cargo run --release --example worm_outbreak
//! ```
//!
//! Recreates the situation of the paper's §4.2.2: during the 2004
//! Sasser outbreak the detectors disagree violently, and the
//! combination strategies diverge. This example labels one simulated
//! outbreak day (2004-06-03), compares all five strategies against
//! ground truth, and prints each detector's contribution.

use mawilab::core::MawilabPipeline;
use mawilab::core::PipelineConfig;
use mawilab::detectors::{DetectorKind, TraceView};
use mawilab::eval::ground_truth::{score_detector, score_strategy, GroundTruthMatcher};
use mawilab::model::{FlowTable, Granularity, TraceDate};
use mawilab::synth::{ArchiveConfig, ArchiveSimulator};

fn main() {
    let sim = ArchiveSimulator::new(ArchiveConfig::default());
    let day = TraceDate::new(2004, 6, 3);
    let lt = sim.generate(day);
    let worms = lt
        .truth
        .anomalies()
        .iter()
        .filter(|a| format!("{:?}", a.kind).contains("Worm"))
        .count();
    println!(
        "outbreak day {day}: {} packets, {} injected anomalies ({} worm instances)",
        lt.trace.len(),
        lt.truth.anomalies().len(),
        worms
    );

    let flows = FlowTable::build(&lt.trace.packets);
    let view = TraceView::new(&lt.trace, &flows);
    let matcher = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);

    let pipeline = MawilabPipeline::new(PipelineConfig::default());
    let (report, per_strategy) = pipeline.run_all_strategies(&lt.trace);
    println!(
        "\n{} alarms → {} communities",
        report.alarm_count(),
        report.community_count()
    );

    println!("\nper-detector anomaly coverage (alarms alone):");
    for d in DetectorKind::ALL {
        let found = score_detector(&matcher, &report.communities, d);
        let alarms = report
            .communities
            .alarms
            .iter()
            .filter(|a| a.detector == d)
            .count();
        println!(
            "  {:6} {:4} alarms, {:2}/{} anomalies",
            d.to_string(),
            alarms,
            found.len(),
            matcher.anomaly_ids().len()
        );
    }

    println!("\nper-strategy ground-truth score:");
    println!(
        "  {:9} {:>8} {:>13} {:>10} {:>9}",
        "strategy", "accepted", "anomalies", "attacks", "precision"
    );
    for (kind, decisions) in &per_strategy {
        let s = score_strategy(&matcher, &report.communities, decisions);
        println!(
            "  {:9} {:>8} {:>6}/{:<6} {:>5}/{:<4} {:>8.2}",
            kind.name(),
            s.accepted,
            s.detected.len(),
            s.total_anomalies,
            s.detected_attacks.len(),
            s.total_attacks,
            s.precision()
        );
    }
}
