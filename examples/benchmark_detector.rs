//! Benchmark *your* detector against MAWILab labels — the database's
//! intended downstream workflow (paper §5).
//!
//! ```sh
//! cargo run --release --example benchmark_detector
//! ```
//!
//! Builds the labels for one trace with the standard 12-configuration
//! ensemble, then plays the role of a researcher evaluating a single
//! new detector (here: one KL configuration) against them. Reports
//! detection, the false-negative count — the metric the paper notes
//! most evaluations omit — and alarm precision.

use mawilab::core::{benchmark_alarms, MawilabPipeline, PipelineConfig};
use mawilab::detectors::{
    Detector, GammaDetector, HoughDetector, KlDetector, PcaDetector, TraceView, Tuning,
};
use mawilab::model::FlowTable;
use mawilab::synth::{SynthConfig, TraceGenerator};

fn main() {
    // Step 1: the archive maintainers label a trace.
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(2010)).generate();
    let flows = FlowTable::build(&lt.trace.packets);
    let view = TraceView::new(&lt.trace, &flows);
    let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
    let anomalous = report.labeled.anomalies().count();
    println!(
        "labels ready: {} communities, {anomalous} anomalous",
        report.community_count()
    );

    // Step 2: researchers benchmark their candidate detectors.
    let candidates: Vec<(&str, Box<dyn Detector>)> = vec![
        ("KL/optimal", Box::new(KlDetector::new(Tuning::Optimal))),
        (
            "Gamma/optimal",
            Box::new(GammaDetector::new(Tuning::Optimal)),
        ),
        (
            "Hough/optimal",
            Box::new(HoughDetector::new(Tuning::Optimal)),
        ),
        ("PCA/optimal", Box::new(PcaDetector::new(Tuning::Optimal))),
    ];
    println!(
        "\n{:14} {:>7} {:>9} {:>7} {:>7} {:>10}",
        "candidate", "alarms", "detected", "missed", "recall", "precision"
    );
    for (name, det) in candidates {
        let alarms = det.analyze(&view);
        let result = benchmark_alarms(&view, &report, &alarms, 0.1);
        println!(
            "{:14} {:>7} {:>9} {:>7} {:>6.2} {:>10.2}",
            name,
            alarms.len(),
            result.detected,
            result.missed,
            result.recall(),
            result.alarm_precision()
        );
    }
    println!("\n(missed = false negatives against the MAWILab labels)");
}
