//! # mawilab
//!
//! Umbrella crate re-exporting the full MAWILab reproduction stack.
//!
//! This workspace reimplements, from scratch and in Rust, the system of
//! *"MAWILab: Combining Diverse Anomaly Detectors for Automated Anomaly
//! Labeling and Performance Benchmarking"* (Fontugne, Borgnat, Abry,
//! Fukuda — ACM CoNEXT 2010): four unsupervised backbone anomaly
//! detectors, a graph-based alarm similarity estimator with Louvain
//! community mining, four unsupervised combination strategies (average,
//! minimum, maximum, SCANN), association-rule summarisation, and the
//! MAWILab four-level taxonomy (`Anomalous` / `Suspicious` / `Notice` /
//! `Benign`).
//!
//! Start with [`core::MawilabPipeline`] for the end-to-end flow, or see
//! the `examples/` directory:
//!
//! ```no_run
//! use mawilab::core::{MawilabPipeline, PipelineConfig};
//! use mawilab::synth::{TraceGenerator, SynthConfig};
//!
//! let trace = TraceGenerator::new(SynthConfig::default().with_seed(7)).generate();
//! let report = MawilabPipeline::new(PipelineConfig::default()).run(&trace.trace);
//! for anomaly in report.labeled.anomalies() {
//!     println!("{anomaly}");
//! }
//! ```

pub use mawilab_combiner as combiner;
pub use mawilab_core as core;
pub use mawilab_detectors as detectors;
pub use mawilab_eval as eval;
pub use mawilab_exec as exec;
pub use mawilab_graph as graph;
pub use mawilab_label as label;
pub use mawilab_linalg as linalg;
pub use mawilab_mining as mining;
pub use mawilab_model as model;
pub use mawilab_similarity as similarity;
pub use mawilab_sketch as sketch;
pub use mawilab_stats as stats;
pub use mawilab_synth as synth;
