//! Streaming/batch equivalence: the acceptance gate of the streaming
//! ingest refactor.
//!
//! `StreamingPipeline` over a chunked source must produce
//! byte-identical decisions and labels to `MawilabPipeline::run` on
//! the materialised trace — across seeds, bin widths and
//! granularities — while the number of packets alive at any moment
//! stays bounded by one chunk (asserted through a counting source,
//! not just claimed).

use mawilab::core::{MawilabPipeline, PipelineConfig, StreamingPipeline};
use mawilab::label::LabeledCommunity;
use mawilab::model::{
    Granularity, PacketChunk, PacketSource, SourceError, TraceChunker, TraceMeta, DEFAULT_CHUNK_US,
};
use mawilab::synth::{AnomalySpec, SynthConfig, TraceGenerator};

fn synth(seed: u64) -> mawilab::synth::LabeledTrace {
    TraceGenerator::new(SynthConfig::default().with_seed(seed).with_anomalies(vec![
        AnomalySpec::SynFlood {
            victim: 40,
            dport: 80,
            rate_pps: 250.0,
            duration_s: 12.0,
            spoofed: true,
        },
        AnomalySpec::SasserWorm {
            infected: 3,
            scans: 900,
            rate_pps: 60.0,
        },
    ]))
    .generate()
}

/// Field-by-field comparison of labeled communities (the struct holds
/// f64 metrics, so no derived PartialEq).
fn assert_labels_identical(streamed: &[LabeledCommunity], batch: &[LabeledCommunity]) {
    assert_eq!(streamed.len(), batch.len(), "community count differs");
    for (s, b) in streamed.iter().zip(batch) {
        assert_eq!(s.community, b.community);
        assert_eq!(
            s.label, b.label,
            "taxonomy label of community {}",
            s.community
        );
        assert_eq!(
            s.heuristic, b.heuristic,
            "heuristic of community {}",
            s.community
        );
        assert_eq!(s.window, b.window, "window of community {}", s.community);
        assert_eq!(s.alarms, b.alarms);
        assert_eq!(s.detectors, b.detectors);
        assert_eq!(
            s.summary.rules, b.summary.rules,
            "rules of community {}",
            s.community
        );
        assert_eq!(s.summary.transactions, b.summary.transactions);
        assert!((s.summary.rule_degree - b.summary.rule_degree).abs() < 1e-12);
        assert!((s.summary.rule_support - b.summary.rule_support).abs() < 1e-12);
    }
}

#[test]
fn streaming_equals_batch_across_seeds_and_bin_widths() {
    for seed in [11u64, 222, 3333] {
        let lt = synth(seed);
        let config = PipelineConfig::default();
        let batch = MawilabPipeline::new(config.clone()).run(&lt.trace);
        for bin_us in [DEFAULT_CHUNK_US, 20_000_000] {
            let mut source = TraceChunker::new(lt.trace.clone(), bin_us);
            let streamed = StreamingPipeline::new(config.clone())
                .run(&mut source)
                .unwrap();
            assert_eq!(
                streamed.communities.alarms, batch.communities.alarms,
                "alarms differ (seed {seed}, bin {bin_us})"
            );
            assert_eq!(
                streamed.communities.traffic, batch.communities.traffic,
                "traffic sets differ (seed {seed}, bin {bin_us})"
            );
            assert_eq!(
                streamed.votes, batch.votes,
                "votes differ (seed {seed}, bin {bin_us})"
            );
            assert_eq!(
                streamed.decisions, batch.decisions,
                "decisions differ (seed {seed}, bin {bin_us})"
            );
            assert_labels_identical(&streamed.labeled.communities, &batch.labeled.communities);
        }
    }
}

#[test]
fn streaming_equals_batch_at_every_granularity() {
    let lt = synth(77);
    for granularity in [
        Granularity::Packet,
        Granularity::Uniflow,
        Granularity::Biflow,
    ] {
        let config = PipelineConfig {
            granularity,
            ..Default::default()
        };
        let batch = MawilabPipeline::new(config.clone()).run(&lt.trace);
        let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
        let streamed = StreamingPipeline::new(config).run(&mut source).unwrap();
        assert_eq!(
            streamed.decisions, batch.decisions,
            "decisions differ at {granularity}"
        );
        assert_eq!(
            streamed.communities.traffic, batch.communities.traffic,
            "traffic differs at {granularity}"
        );
        assert_labels_identical(&streamed.labeled.communities, &batch.labeled.communities);
    }
}

/// A source that counts how many packets it has handed out in the
/// currently-lent chunk, and tracks the peak. Because `next_chunk`
/// lends from a single internal buffer, the packets of chunk N are
/// gone before chunk N+1 exists — `peak_live` IS the largest chunk,
/// and the assertion below pins it far under the trace size.
struct CountingSource {
    inner: TraceChunker,
    peak_live: usize,
    total: u64,
}

impl CountingSource {
    fn new(inner: TraceChunker) -> Self {
        CountingSource {
            inner,
            peak_live: 0,
            total: 0,
        }
    }
}

impl PacketSource for CountingSource {
    fn meta(&self) -> &TraceMeta {
        self.inner.meta()
    }

    fn bin_us(&self) -> u64 {
        self.inner.bin_us()
    }

    fn next_chunk(&mut self) -> Result<Option<&PacketChunk>, SourceError> {
        match self.inner.next_chunk()? {
            Some(chunk) => {
                self.peak_live = self.peak_live.max(chunk.packets.len());
                self.total += chunk.packets.len() as u64;
                Ok(Some(chunk))
            }
            None => Ok(None),
        }
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.inner.rewind()
    }
}

#[test]
fn peak_live_packet_memory_is_bounded_by_one_chunk() {
    let lt = synth(11);
    let total = lt.trace.len();
    assert!(
        total > 10_000,
        "trace too small to make the bound meaningful: {total}"
    );
    let mut source = CountingSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
    let report = StreamingPipeline::new(PipelineConfig::default())
        .run(&mut source)
        .unwrap();

    // Both passes drained everything…
    assert_eq!(source.total, 2 * total as u64);
    // …but the pipeline never saw more than one chunk's packets at a
    // time, and the report's own accounting agrees with the source's.
    assert_eq!(report.stats.peak_chunk_packets, source.peak_live);
    assert!(
        source.peak_live * 4 < total,
        "peak live packets {} is not clearly below trace size {}",
        source.peak_live,
        total
    );
    // The 60 s trace cut into 5 s bins: a genuinely multi-chunk
    // stream, not one big chunk.
    assert!(
        report.stats.chunks() >= 10,
        "only {} chunks",
        report.stats.chunks()
    );
}

#[test]
fn custom_detector_set_streams_too() {
    use mawilab::detectors::{Detector, KlDetector, Tuning};
    let lt = synth(5);
    let detectors: Vec<Box<dyn Detector>> = vec![Box::new(KlDetector::new(Tuning::Sensitive))];
    let config = PipelineConfig::default();
    let batch = MawilabPipeline::new(config.clone())
        .with_detectors(vec![Box::new(KlDetector::new(Tuning::Sensitive))])
        .run(&lt.trace);
    let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
    let streamed = StreamingPipeline::new(config)
        .with_detectors(detectors)
        .run(&mut source)
        .unwrap();
    assert_eq!(streamed.communities.alarms, batch.communities.alarms);
    assert_eq!(streamed.decisions, batch.decisions);
}
