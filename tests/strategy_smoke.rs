//! Smoke test: the full pipeline runs under every combination
//! strategy on a tiny synthetic trace and produces a non-empty
//! labeled report.

use mawilab::core::{MawilabPipeline, PipelineConfig, StrategyKind};
use mawilab::synth::{AnomalySpec, SynthConfig, TraceGenerator};

/// A small, fast trace with one unmistakable anomaly so all four
/// detectors have something to vote on.
fn tiny_trace() -> mawilab::synth::LabeledTrace {
    let cfg = SynthConfig::default()
        .with_seed(4242)
        .with_duration(30)
        .with_background_pps(150.0)
        .with_anomalies(vec![AnomalySpec::SynFlood {
            victim: 60,
            dport: 80,
            rate_pps: 300.0,
            duration_s: 10.0,
            spoofed: true,
        }]);
    TraceGenerator::new(cfg).generate()
}

#[test]
fn every_strategy_yields_a_nonempty_labeled_report() {
    let lt = tiny_trace();
    for strategy in StrategyKind::ALL {
        let config = PipelineConfig {
            strategy,
            ..PipelineConfig::default()
        };
        let report = MawilabPipeline::new(config).run(&lt.trace);
        assert!(
            report.alarm_count() > 0,
            "{strategy:?}: no alarms on a trace with a 300 pps SYN flood"
        );
        assert!(
            !report.labeled.communities.is_empty(),
            "{strategy:?}: empty labeled report"
        );
        assert_eq!(
            report.labeled.communities.len(),
            report.decisions.len(),
            "{strategy:?}: labels and decisions disagree on community count"
        );
    }
}

#[test]
fn strategies_agree_on_alarms_but_may_differ_on_decisions() {
    // The combination strategy only affects accept/reject decisions —
    // detection and community structure are strategy-independent.
    let lt = tiny_trace();
    let reports: Vec<_> = StrategyKind::ALL
        .iter()
        .map(|&strategy| {
            MawilabPipeline::new(PipelineConfig {
                strategy,
                ..PipelineConfig::default()
            })
            .run(&lt.trace)
        })
        .collect();
    let first = &reports[0];
    for r in &reports[1..] {
        assert_eq!(r.alarm_count(), first.alarm_count());
        assert_eq!(r.community_count(), first.community_count());
    }
}
