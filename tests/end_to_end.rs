//! Cross-crate integration tests: the full pipeline on synthetic
//! traces with ground truth.

use mawilab::core::{MawilabPipeline, PipelineConfig, StrategyKind};
use mawilab::detectors::{DetectorKind, TraceView};
use mawilab::eval::ground_truth::{score_detector, score_strategy, GroundTruthMatcher};
use mawilab::label::MawilabLabel;
use mawilab::model::{FlowTable, Granularity};
use mawilab::synth::{SynthConfig, TraceGenerator};

fn generate(seed: u64) -> mawilab::synth::LabeledTrace {
    TraceGenerator::new(SynthConfig::default().with_seed(seed)).generate()
}

#[test]
fn pipeline_is_fully_deterministic_across_runs() {
    let lt = generate(1001);
    let p = MawilabPipeline::new(PipelineConfig::default());
    let a = p.run(&lt.trace);
    let b = p.run(&lt.trace);
    assert_eq!(a.alarm_count(), b.alarm_count());
    assert_eq!(a.votes, b.votes);
    assert_eq!(a.decisions, b.decisions);
    let la: Vec<_> = a
        .labeled
        .communities
        .iter()
        .map(|c| (c.label, c.heuristic))
        .collect();
    let lb: Vec<_> = b
        .labeled
        .communities
        .iter()
        .map(|c| (c.label, c.heuristic))
        .collect();
    assert_eq!(la, lb);
}

#[test]
fn every_community_gets_exactly_one_label_and_decision() {
    let lt = generate(1002);
    let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
    assert_eq!(report.decisions.len(), report.community_count());
    assert_eq!(report.labeled.communities.len(), report.community_count());
    // Taxonomy totality: every labeled community carries a real label.
    for lc in &report.labeled.communities {
        assert!(matches!(
            lc.label,
            MawilabLabel::Anomalous | MawilabLabel::Suspicious | MawilabLabel::Notice
        ));
        assert!(lc.alarms >= 1);
        assert!(lc.detectors >= 1 && lc.detectors <= 4);
    }
    // Sum of community sizes equals the number of alarms.
    let total: usize = report.labeled.communities.iter().map(|c| c.alarms).sum();
    assert_eq!(total, report.alarm_count());
}

#[test]
fn combined_pipeline_recalls_at_least_the_best_single_detector() {
    // The paper's motivation: the ensemble beats each constituent.
    // Across several traces, accepted communities (max strategy, the
    // most inclusive) must cover at least as many true anomalies as
    // any single detector's own alarms.
    let mut ensemble_total = 0usize;
    let mut best_single_total = 0usize;
    for seed in [2001u64, 2002, 2003] {
        let lt = generate(seed);
        let flows = FlowTable::build(&lt.trace.packets);
        let view = TraceView::new(&lt.trace, &flows);
        let pipeline = MawilabPipeline::new(PipelineConfig {
            strategy: StrategyKind::Maximum,
            ..Default::default()
        });
        let report = pipeline.run(&lt.trace);
        let matcher = GroundTruthMatcher::new(&view, &lt.truth, Granularity::Uniflow);
        let ensemble = score_strategy(&matcher, &report.communities, &report.decisions);
        let best_single = DetectorKind::ALL
            .iter()
            .map(|&d| score_detector(&matcher, &report.communities, d).len())
            .max()
            .unwrap_or(0);
        ensemble_total += ensemble.detected.len();
        best_single_total += best_single;
    }
    assert!(
        ensemble_total >= best_single_total,
        "ensemble {ensemble_total} < best single {best_single_total}"
    );
}

#[test]
fn scann_rejects_most_silent_noise_but_keeps_consensus() {
    let lt = generate(1003);
    let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
    for (c, d) in report.decisions.iter().enumerate() {
        let votes = report.votes.vote_count(c);
        // Communities backed by most configurations must be accepted;
        // one-vote communities must not be.
        if votes >= 10 {
            assert!(d.accepted, "community {c} with {votes} votes rejected");
        }
        if votes <= 1 {
            assert!(!d.accepted, "community {c} with {votes} vote accepted");
        }
    }
}

#[test]
fn labels_partition_matches_decisions() {
    let lt = generate(1004);
    let report = MawilabPipeline::new(PipelineConfig::default()).run(&lt.trace);
    let anomalous = report.labeled.count(MawilabLabel::Anomalous);
    let accepted = report.decisions.iter().filter(|d| d.accepted).count();
    assert_eq!(anomalous, accepted);
    let rejected = report.decisions.len() - accepted;
    assert_eq!(
        report.labeled.count(MawilabLabel::Suspicious) + report.labeled.count(MawilabLabel::Notice),
        rejected
    );
}

#[test]
fn strategies_differ_on_real_tables() {
    // §4.2: the strategies genuinely disagree — otherwise comparing
    // them (Figs. 6-7) would be pointless. Check across a few traces
    // that min ≠ max somewhere.
    let mut any_difference = false;
    for seed in [3001u64, 3002] {
        let lt = generate(seed);
        let (_, per_strategy) =
            MawilabPipeline::new(PipelineConfig::default()).run_all_strategies(&lt.trace);
        let get = |k: StrategyKind| {
            per_strategy
                .iter()
                .find(|(kk, _)| *kk == k)
                .map(|(_, d)| d.iter().filter(|x| x.accepted).count())
                .unwrap()
        };
        if get(StrategyKind::Minimum) != get(StrategyKind::Maximum) {
            any_difference = true;
        }
    }
    assert!(any_difference, "minimum and maximum agreed everywhere");
}
