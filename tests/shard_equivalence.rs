//! Equivalence proof for the sharded parallel similarity engine: the
//! time-binned `build_graph` must produce the exact graph of the
//! retained sequential reference — same edges, same weights, same
//! adjacency order — on arbitrary traffic sets, at any thread count.

use mawilab::graph::Graph;
use mawilab::similarity::{SimilarityEstimator, SimilarityMeasure};
use proptest::prelude::*;

/// Asserts two graphs are byte-identical: node/edge counts, adjacency
/// lists in order, self-loops.
fn assert_same_graph(a: &Graph, b: &Graph) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.node_count(), b.node_count());
    prop_assert_eq!(a.edge_count(), b.edge_count());
    for v in 0..a.node_count() {
        prop_assert_eq!(a.neighbors(v), b.neighbors(v));
        prop_assert_eq!(a.self_loop(v), b.self_loop(v));
    }
    Ok(())
}

/// Traffic sets shaped like real extractions: clustered ids (groups
/// of alarms share an id neighbourhood, so bins see real overlap)
/// with set sizes from empty to dozens of items.
fn arb_traffic() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec((0u32..8, prop::collection::vec(0u32..120, 0..40)), 0..30).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(group, offsets)| {
                    let mut set: Vec<u32> = offsets.into_iter().map(|o| group * 80 + o).collect();
                    set.sort_unstable();
                    set.dedup();
                    set
                })
                .collect()
        },
    )
}

/// Sparse variant: ids scattered over the whole u32 space, exercising
/// the hash-indexed fallback path of the sharded engine.
fn arb_sparse_traffic() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(any::<u32>(), 0..12), 0..16).prop_map(|raw| {
        raw.into_iter()
            .map(|mut set| {
                set.sort_unstable();
                set.dedup();
                set
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense, clustered traffic: sharded == sequential for every
    /// measure and with edge pruning active.
    #[test]
    fn sharded_build_matches_reference(traffic in arb_traffic()) {
        for measure in [
            SimilarityMeasure::Simpson,
            SimilarityMeasure::Jaccard,
            SimilarityMeasure::Constant,
        ] {
            for min_similarity in [0.0, 0.3] {
                let est = SimilarityEstimator { measure, min_similarity, ..Default::default() };
                assert_same_graph(
                    &est.build_graph(&traffic),
                    &est.build_graph_sequential(&traffic),
                )?;
            }
        }
    }

    /// Sparse id spaces (hash-indexed bins): sharded == sequential.
    #[test]
    fn sharded_build_matches_reference_on_sparse_ids(traffic in arb_sparse_traffic()) {
        let est = SimilarityEstimator::default();
        assert_same_graph(
            &est.build_graph(&traffic),
            &est.build_graph_sequential(&traffic),
        )?;
    }

    /// The Louvain partition over a sharded graph equals the
    /// partition over the reference graph (the whole step-2 output is
    /// engine-independent, not just the edges).
    #[test]
    fn communities_are_engine_independent(traffic in arb_traffic()) {
        let est = SimilarityEstimator::default();
        let sharded = mawilab::graph::louvain(&est.build_graph(&traffic), 1.0);
        let reference = mawilab::graph::louvain(&est.build_graph_sequential(&traffic), 1.0);
        prop_assert_eq!(sharded, reference);
    }
}
