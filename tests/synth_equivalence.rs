//! Generation-equivalence suite for the sharded synth engine.
//!
//! The sharded generator (anomalies + background bins fanned out over
//! counter-derived RNG streams) must be **byte-identical** to the
//! retained sequential reference (`generate_sequential`) on every
//! config, at every `MAWILAB_THREADS`, and the chunk-native streaming
//! source must emit exactly the batch trace at every chunk width —
//! the same identities the similarity engine (PR 3) and the streaming
//! pipeline (PR 2) are locked down by.
//!
//! Tests in this binary share `ENV_LOCK`: one of them sweeps the
//! process-wide `MAWILAB_THREADS` variable, and a sibling running
//! concurrently would race on it.

use mawilab::model::{collect_packets, PacketSource, TraceDate};
use mawilab::synth::{ArchiveConfig, ArchiveSimulator, LabeledTrace, SynthConfig, TraceGenerator};
use proptest::prelude::*;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Asserts two labeled traces are byte-identical: packets, per-packet
/// truth tags, and the anomaly records' load-bearing fields.
fn assert_identical(a: &LabeledTrace, b: &LabeledTrace, what: &str) {
    assert_eq!(a.trace.packets, b.trace.packets, "{what}: packets");
    assert_eq!(a.truth.tags(), b.truth.tags(), "{what}: tags");
    assert_eq!(
        a.truth.anomalies().len(),
        b.truth.anomalies().len(),
        "{what}: record count"
    );
    for (ra, rb) in a.truth.anomalies().iter().zip(b.truth.anomalies()) {
        assert_eq!(
            (ra.id, ra.kind, ra.window, ra.packet_count),
            (rb.id, rb.kind, rb.window, rb.packet_count),
            "{what}: record"
        );
    }
}

#[test]
fn sharded_equals_sequential_at_every_thread_count() {
    let _lock = ENV_LOCK.lock().unwrap();
    // Plain configs across seeds, plus one archive day (the per-day
    // config path used by the month-scale sweeps).
    let sim = ArchiveSimulator::new(ArchiveConfig {
        scale: 0.4,
        ..Default::default()
    });
    let configs: Vec<SynthConfig> = vec![
        SynthConfig::default().with_seed(7),
        SynthConfig::default().with_seed(99).with_duration(23),
        sim.config_for(TraceDate::new(2004, 5, 10)),
    ];
    for cfg in &configs {
        let generator = TraceGenerator::new(cfg.clone());
        // The oracle never fans out — it is thread-count independent
        // by construction; pin threads anyway so the baseline is the
        // fully sequential world.
        std::env::set_var("MAWILAB_THREADS", "1");
        let oracle = generator.generate_sequential();
        for threads in ["1", "2", "4", "13"] {
            std::env::set_var("MAWILAB_THREADS", threads);
            let sharded = generator.generate();
            assert_identical(
                &sharded,
                &oracle,
                &format!("seed {} at MAWILAB_THREADS={threads}", cfg.seed),
            );
            // The chunk-native source must replay the same bytes too.
            let mut source = generator.stream(5_000_000);
            assert_eq!(
                collect_packets(&mut source).unwrap(),
                oracle.trace.packets,
                "stream at MAWILAB_THREADS={threads}"
            );
        }
        std::env::remove_var("MAWILAB_THREADS");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// stream(bin_us) chunk concatenation ≡ generate() across seeds ×
    /// durations × chunk widths (the identity PR 2 proved for
    /// detection, now for generation). Also checks chunk shape: windows
    /// non-overlapping, in order, every packet inside its window.
    #[test]
    fn stream_concatenation_matches_batch(
        seed in 0u64..500,
        duration_s in 8u32..30,
        bin_choice in 0usize..6,
    ) {
        let bin_us = [500_000u64, 1_000_000, 2_500_000, 5_000_000, 7_300_000, 60_000_000]
            [bin_choice];
        let _lock = ENV_LOCK.lock().unwrap();
        let cfg = SynthConfig::default()
            .with_seed(seed)
            .with_duration(duration_s);
        let generator = TraceGenerator::new(cfg);
        let batch = generator.generate();
        let mut source = generator.stream(bin_us);

        let mut streamed = Vec::new();
        let mut tags = Vec::new();
        let mut last_window_end = 0u64;
        while let Some(chunk) = source.next_chunk().unwrap() {
            prop_assert!(!chunk.is_empty(), "empty chunk emitted");
            prop_assert!(chunk.window.start_us >= last_window_end, "windows overlap");
            prop_assert_eq!(chunk.window.len_us(), bin_us);
            for p in &chunk.packets {
                prop_assert!(chunk.window.contains(p.ts_us));
            }
            last_window_end = chunk.window.end_us;
            streamed.extend_from_slice(&chunk.packets);
            tags.extend_from_slice(source.chunk_tags());
        }
        prop_assert_eq!(&streamed, &batch.trace.packets);
        prop_assert_eq!(&tags, &batch.truth.tags().to_vec());

        // Rewinding replays the identical stream.
        source.rewind().unwrap();
        prop_assert_eq!(collect_packets(&mut source).unwrap(), streamed);
    }

    /// Sharded ≡ sequential under proptest-chosen configs (threads at
    /// the ambient default — the env sweep above covers the overrides).
    #[test]
    fn sharded_equals_sequential_on_arbitrary_configs(
        seed in 0u64..10_000,
        duration_s in 5u32..25,
        pps in 100.0f64..700.0,
    ) {
        let _lock = ENV_LOCK.lock().unwrap();
        let cfg = SynthConfig::default()
            .with_seed(seed)
            .with_duration(duration_s)
            .with_background_pps(pps);
        let generator = TraceGenerator::new(cfg);
        let sharded = generator.generate();
        let oracle = generator.generate_sequential();
        prop_assert_eq!(&sharded.trace.packets, &oracle.trace.packets);
        prop_assert_eq!(sharded.truth.tags(), oracle.truth.tags());
    }
}
