//! Robustness of the pcap readers: corrupt length fields, truncated
//! tails, and chunk boundaries that do not align with record
//! timestamps.

use mawilab::model::pcap::{read_pcap, write_pcap, MAX_RECORD_BYTES};
use mawilab::model::{
    Packet, PacketSource, StreamingPcapReader, TcpFlags, Trace, TraceDate, TraceMeta,
    DEFAULT_CHUNK_US,
};
use std::io::Cursor;
use std::net::Ipv4Addr;

fn ip(d: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 51, 100, d)
}

/// A trace whose packets straddle several 5-second chunk bins, with
/// one packet landing mid-bin on a non-boundary timestamp.
fn sample_trace() -> Trace {
    let meta = TraceMeta::standard(TraceDate::new(2004, 5, 3));
    let base = meta.window().start_us;
    let offsets_us = [
        0u64, 1, 2_500_000, 5_000_000, 7_499_999, 12_345_678, 24_999_999, 25_000_000,
    ];
    let packets: Vec<Packet> = offsets_us
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            Packet::tcp(
                base + o,
                ip(1),
                1000 + i as u16,
                ip(2),
                80,
                TcpFlags::syn(),
                60,
            )
        })
        .collect();
    Trace::new(meta, packets)
}

fn pcap_bytes(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::new();
    write_pcap(&mut buf, trace).unwrap();
    buf
}

/// Patches record `idx`'s `incl_len` field to `value` (little-endian
/// file as written by `write_pcap`; all sample records share one
/// frame size).
fn patch_incl_len(buf: &mut [u8], idx: usize, value: u32) {
    let frame_len = u32::from_le_bytes([buf[24 + 8], buf[24 + 9], buf[24 + 10], buf[24 + 11]]);
    let rec_off = 24 + idx * (16 + frame_len as usize);
    buf[rec_off + 8..rec_off + 12].copy_from_slice(&value.to_le_bytes());
}

#[test]
fn streaming_reader_round_trips_and_chunks_by_time() {
    let trace = sample_trace();
    let buf = pcap_bytes(&trace);
    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), DEFAULT_CHUNK_US).unwrap();
    let mut packets = Vec::new();
    let mut chunk_sizes = Vec::new();
    while let Some(chunk) = reader.next_chunk().unwrap() {
        for p in &chunk.packets {
            assert!(
                chunk.window.contains(p.ts_us),
                "packet outside its chunk window"
            );
        }
        chunk_sizes.push(chunk.packets.len());
        packets.extend_from_slice(&chunk.packets);
    }
    assert_eq!(packets, trace.packets);
    // Offsets 0,1,2.5s → bin 0; 5s,7.499s → bin 1; 12.3s → bin 2;
    // 24.999s → bin 4; 25s → bin 5.
    assert_eq!(chunk_sizes, vec![3, 2, 1, 1, 1]);
    assert_eq!(reader.packets_read(), trace.packets.len() as u64);
    assert_eq!(reader.skipped(), 0);
}

#[test]
fn chunk_boundary_mid_bin_preserves_every_packet() {
    // A bin width that does NOT divide any detector bin or packet
    // spacing: records fall mid-bin and right at bin edges.
    let trace = sample_trace();
    let buf = pcap_bytes(&trace);
    for bin_us in [700_000u64, 3_333_333, 7_500_000] {
        let mut reader =
            StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), bin_us).unwrap();
        let mut packets = Vec::new();
        while let Some(chunk) = reader.next_chunk().unwrap() {
            packets.extend_from_slice(&chunk.packets);
        }
        assert_eq!(
            packets, trace.packets,
            "bin {bin_us} lost or reordered packets"
        );
    }
}

#[test]
fn oversized_incl_len_is_skipped_not_allocated() {
    let trace = sample_trace();
    let mut buf = pcap_bytes(&trace);
    // Claim a ~3.9 GiB record: honouring it would try a multi-GB
    // allocation; the reader must skip the (clamped) record instead.
    patch_incl_len(&mut buf, 2, 0xEFFF_FFFF);
    // The bogus length swallows the rest of the file during the
    // discard, so everything after record 2 is lost — but the reader
    // neither allocates nor errors.
    let (parsed, skipped) = read_pcap(Cursor::new(&buf), trace.meta.clone()).unwrap();
    assert_eq!(skipped, 1);
    assert_eq!(parsed.packets, trace.packets[..2].to_vec());

    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), DEFAULT_CHUNK_US).unwrap();
    let mut packets = Vec::new();
    while let Some(chunk) = reader.next_chunk().unwrap() {
        packets.extend_from_slice(&chunk.packets);
    }
    assert_eq!(packets, trace.packets[..2].to_vec());
    assert_eq!(reader.skipped(), 1);
}

#[test]
fn oversized_record_in_the_middle_resyncs_when_length_is_honest() {
    // An incl_len just over the clamp whose bytes really are present:
    // the reader skips exactly that record and keeps the rest.
    let trace = sample_trace();
    let frame: Vec<u8> = pcap_bytes(&trace);
    let frame_len =
        u32::from_le_bytes([frame[24 + 8], frame[24 + 9], frame[24 + 10], frame[24 + 11]]);
    // Build a file: record0 (good), oversized record, record1 (good).
    let mut buf = frame[..24].to_vec();
    let rec0 = &frame[24..24 + 16 + frame_len as usize];
    buf.extend_from_slice(rec0);
    let big = MAX_RECORD_BYTES + 17;
    let mut rec_hdr = [0u8; 16];
    rec_hdr[8..12].copy_from_slice(&(big as u32).to_le_bytes());
    rec_hdr[12..16].copy_from_slice(&(big as u32).to_le_bytes());
    buf.extend_from_slice(&rec_hdr);
    buf.extend_from_slice(&vec![0u8; big]);
    let rec1_off = 24 + 16 + frame_len as usize;
    buf.extend_from_slice(&frame[rec1_off..rec1_off + 16 + frame_len as usize]);

    let (parsed, skipped) = read_pcap(Cursor::new(&buf), trace.meta.clone()).unwrap();
    assert_eq!(skipped, 1, "oversized record not counted");
    assert_eq!(
        parsed.packets,
        trace.packets[..2].to_vec(),
        "resync after skip failed"
    );
}

#[test]
fn truncated_final_record_degrades_to_counted_skip() {
    let trace = sample_trace();
    let mut buf = pcap_bytes(&trace);
    buf.truncate(buf.len() - 7); // cut mid-frame of the last record
    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), DEFAULT_CHUNK_US).unwrap();
    let mut packets = Vec::new();
    while let Some(chunk) = reader.next_chunk().unwrap() {
        packets.extend_from_slice(&chunk.packets);
    }
    // Everything before the damaged tail was delivered; the tail is a
    // counted, flagged skip — not an error that kills the sweep.
    assert_eq!(packets, trace.packets[..trace.packets.len() - 1].to_vec());
    assert_eq!(reader.skipped(), 1, "truncated tail must be counted");
    assert!(reader.truncated_tail(), "truncation must be flagged");
}

#[test]
fn truncated_record_header_degrades_to_counted_skip() {
    let trace = sample_trace();
    let frame_len = {
        let b = pcap_bytes(&trace);
        u32::from_le_bytes([b[32], b[33], b[34], b[35]])
    };
    let mut buf = pcap_bytes(&trace);
    // Cut inside the *header* of the last record: the partial record
    // is an observable truncation, not a silent clean EOF.
    let last_rec = buf.len() - (16 + frame_len as usize);
    buf.truncate(last_rec + 9);
    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), DEFAULT_CHUNK_US).unwrap();
    let mut packets = Vec::new();
    while let Some(chunk) = reader.next_chunk().unwrap() {
        packets.extend_from_slice(&chunk.packets);
    }
    assert_eq!(packets, trace.packets[..trace.packets.len() - 1].to_vec());
    assert_eq!(reader.skipped(), 1, "partial header must be counted");
    assert!(reader.truncated_tail(), "truncation must be flagged");
}

#[test]
fn truncation_flag_resets_on_rewind() {
    let trace = sample_trace();
    let mut buf = pcap_bytes(&trace);
    buf.truncate(buf.len() - 7);
    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), DEFAULT_CHUNK_US).unwrap();
    while reader.next_chunk().unwrap().is_some() {}
    assert!(reader.truncated_tail());
    reader.rewind().unwrap();
    assert!(!reader.truncated_tail());
    assert_eq!(reader.skipped(), 0);
}

#[test]
fn rewind_replays_the_identical_chunk_stream() {
    let trace = sample_trace();
    let buf = pcap_bytes(&trace);
    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), trace.meta.clone(), DEFAULT_CHUNK_US).unwrap();
    let mut first = Vec::new();
    while let Some(chunk) = reader.next_chunk().unwrap() {
        first.push((chunk.window, chunk.packets.clone()));
    }
    reader.rewind().unwrap();
    let mut second = Vec::new();
    while let Some(chunk) = reader.next_chunk().unwrap() {
        second.push((chunk.window, chunk.packets.clone()));
    }
    assert_eq!(first.len(), second.len());
    for ((w1, p1), (w2, p2)) in first.iter().zip(&second) {
        assert_eq!(w1, w2);
        assert_eq!(p1, p2);
    }
}

#[test]
fn streaming_pipeline_runs_straight_off_a_pcap_stream() {
    use mawilab::core::{MawilabPipeline, PipelineConfig, StreamingPipeline};
    use mawilab::synth::{SynthConfig, TraceGenerator};
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(31)).generate();
    let buf = pcap_bytes(&lt.trace);
    // Round-trip the trace through pcap so both pipelines see the
    // serialised packets.
    let (round, skipped) = read_pcap(Cursor::new(&buf), lt.trace.meta.clone()).unwrap();
    assert_eq!(skipped, 0);
    let batch = MawilabPipeline::new(PipelineConfig::default()).run(&round);

    let mut reader =
        StreamingPcapReader::new(Cursor::new(&buf), lt.trace.meta.clone(), DEFAULT_CHUNK_US)
            .unwrap();
    let streamed = StreamingPipeline::new(PipelineConfig::default())
        .run(&mut reader)
        .unwrap();
    assert_eq!(streamed.communities.alarms, batch.communities.alarms);
    assert_eq!(streamed.decisions, batch.decisions);
}
