//! Failure-injection tests: degenerate inputs must degrade
//! gracefully, never panic.

use mawilab::core::{MawilabPipeline, PipelineConfig, StrategyKind};
use mawilab::model::pcap::{read_pcap, PcapError};
use mawilab::model::{FlowTable, Granularity, Packet, TcpFlags, Trace, TraceDate, TraceMeta};
use mawilab::similarity::{SimilarityEstimator, SimilarityMeasure};
use std::net::Ipv4Addr;

fn meta() -> TraceMeta {
    TraceMeta::standard(TraceDate::new(2004, 6, 2))
}

#[test]
fn empty_trace_labels_nothing() {
    let trace = Trace::new(meta(), vec![]);
    for strategy in StrategyKind::ALL {
        let report = MawilabPipeline::new(PipelineConfig {
            strategy,
            ..Default::default()
        })
        .run(&trace);
        assert_eq!(report.community_count(), 0);
        assert!(report.labeled.communities.is_empty());
    }
}

#[test]
fn single_packet_trace_is_handled() {
    let base = meta().window().start_us;
    let trace = Trace::new(
        meta(),
        vec![Packet::tcp(
            base,
            Ipv4Addr::new(1, 2, 3, 4),
            1234,
            Ipv4Addr::new(5, 6, 7, 8),
            80,
            TcpFlags::syn(),
            40,
        )],
    );
    let report = MawilabPipeline::new(PipelineConfig::default()).run(&trace);
    assert!(report.community_count() <= 1);
}

#[test]
fn identical_packet_storm_is_handled() {
    // One flow repeated thousands of times: every detector sees a
    // degenerate distribution; nothing may panic or divide by zero.
    let base = meta().window().start_us;
    let packets: Vec<Packet> = (0..5000)
        .map(|i| {
            Packet::tcp(
                base + i * 1000,
                Ipv4Addr::new(9, 9, 9, 9),
                4444,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
                TcpFlags::syn(),
                48,
            )
        })
        .collect();
    let trace = Trace::new(meta(), packets);
    for granularity in [
        Granularity::Packet,
        Granularity::Uniflow,
        Granularity::Biflow,
    ] {
        let report = MawilabPipeline::new(PipelineConfig {
            granularity,
            ..Default::default()
        })
        .run(&trace);
        // Whatever is reported must be internally consistent.
        assert_eq!(report.decisions.len(), report.community_count());
    }
}

#[test]
fn all_measures_and_granularities_run() {
    let base = meta().window().start_us;
    let mut packets = Vec::new();
    for i in 0..2000u64 {
        packets.push(Packet::udp(
            base + i * 5000,
            Ipv4Addr::new(10, (i % 50) as u8, 1, 1),
            1025 + (i % 100) as u16,
            Ipv4Addr::new(20, 1, 1, (i % 30) as u8),
            53,
            120,
        ));
    }
    let trace = Trace::new(meta(), packets);
    for measure in [
        SimilarityMeasure::Simpson,
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::Constant,
    ] {
        let report = MawilabPipeline::new(PipelineConfig {
            measure,
            ..Default::default()
        })
        .run(&trace);
        assert_eq!(report.decisions.len(), report.community_count());
    }
    // Estimator with an absurd threshold prunes every edge: all
    // communities become singles.
    let flows = FlowTable::build(&trace.packets);
    let view = mawilab::detectors::TraceView::new(&trace, &flows);
    let alarms = mawilab::detectors::run_all(&mawilab::detectors::standard_configurations(), &view);
    let est = SimilarityEstimator {
        min_similarity: 1.1,
        ..Default::default()
    };
    let n_alarms = alarms.len();
    let communities = est.estimate(&view, alarms);
    assert_eq!(communities.community_count(), n_alarms);
}

#[test]
fn corrupt_pcap_inputs_error_cleanly() {
    // Garbage header.
    let garbage = vec![0xAAu8; 100];
    match read_pcap(std::io::Cursor::new(&garbage), meta()) {
        Err(PcapError::BadMagic(_)) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // Too short for a header.
    let short = vec![0u8; 10];
    assert!(matches!(
        read_pcap(std::io::Cursor::new(&short), meta()),
        Err(PcapError::Io(_))
    ));
}

#[test]
fn out_of_window_packets_do_not_break_binning() {
    // Packets stamped far outside the nominal 14:00 capture window
    // (clock skew in real captures). Detectors clamp or skip them.
    let w = meta().window();
    let packets = vec![
        Packet::udp(
            0,
            Ipv4Addr::new(1, 1, 1, 1),
            1,
            Ipv4Addr::new(2, 2, 2, 2),
            2,
            100,
        ),
        Packet::udp(
            w.start_us,
            Ipv4Addr::new(1, 1, 1, 1),
            1,
            Ipv4Addr::new(2, 2, 2, 2),
            2,
            100,
        ),
        Packet::udp(
            w.end_us + 1_000_000,
            Ipv4Addr::new(1, 1, 1, 1),
            1,
            Ipv4Addr::new(2, 2, 2, 2),
            2,
            100,
        ),
    ];
    let trace = Trace::new(meta(), packets);
    let report = MawilabPipeline::new(PipelineConfig::default()).run(&trace);
    assert_eq!(report.decisions.len(), report.community_count());
}
