//! Worked examples lifted directly from the paper's text, reproduced
//! through the real data structures.

use mawilab::combiner::{Average, CombinationStrategy, Maximum, Minimum, VoteTable};
use mawilab::detectors::{Alarm, AlarmScope, DetectorKind, Tuning};
use mawilab::graph::Partition;
use mawilab::model::{Granularity, TimeWindow};
use mawilab::similarity::{AlarmCommunities, SimilarityEstimator, SimilarityMeasure};
use std::net::Ipv4Addr;

fn alarm(detector: DetectorKind, tuning: Tuning) -> Alarm {
    Alarm {
        detector,
        tuning,
        window: TimeWindow::new(0, 1_000_000),
        scope: AlarmScope::SrcHost(Ipv4Addr::new(192, 0, 2, 1)),
        score: 1.0,
    }
}

/// Paper Fig. 2: a community with alarms A0, A1, B0, B1, B2 out of
/// three detectors × three configurations gives ϕ_A = 0.66,
/// ϕ_B = 1.0, ϕ_C = 0.0.
#[test]
fn figure2_confidence_scores() {
    // Map A=PCA, B=Gamma, C=Hough. All five alarms share traffic so
    // they form one community.
    let alarms = vec![
        alarm(DetectorKind::Pca, Tuning::Conservative),   // A0
        alarm(DetectorKind::Pca, Tuning::Optimal),        // A1
        alarm(DetectorKind::Gamma, Tuning::Conservative), // B0
        alarm(DetectorKind::Gamma, Tuning::Optimal),      // B1
        alarm(DetectorKind::Gamma, Tuning::Sensitive),    // B2
    ];
    let traffic: Vec<Vec<u32>> = vec![vec![1, 2, 3]; 5];
    let est = SimilarityEstimator::default();
    let graph = est.build_graph(&traffic);
    let communities = AlarmCommunities::new(
        alarms,
        traffic,
        graph,
        Partition::from_labels(vec![0; 5]),
        Granularity::Uniflow,
    );
    let votes = VoteTable::from_communities(&communities);
    assert_eq!(votes.len(), 1);
    assert!((votes.confidence(0, DetectorKind::Pca) - 2.0 / 3.0).abs() < 1e-12);
    assert_eq!(votes.confidence(0, DetectorKind::Gamma), 1.0);
    assert_eq!(votes.confidence(0, DetectorKind::Hough), 0.0);
}

/// §2.2.3 worked outcomes for Fig. 2's community under the three
/// simple strategies (computed with the paper's three detectors by
/// saturating the fourth, unused family for the average case).
#[test]
fn figure2_strategy_decisions() {
    let mut row = [false; 12];
    row[0] = true; // A0
    row[1] = true; // A1
    row[3] = true; // B0
    row[4] = true; // B1
    row[5] = true; // B2
    let table = VoteTable::from_rows(vec![row]);
    // min = 0 → rejected; max = 1 → accepted (paper text).
    assert!(!Minimum.classify(&table)[0].accepted);
    assert!(Maximum.classify(&table)[0].accepted);
    // The paper's average (three detectors) = 5/9 > 0.5 → accepted.
    // Verify the arithmetic through the confidence scores directly.
    let phi = [
        table.confidence(0, DetectorKind::Pca),
        table.confidence(0, DetectorKind::Gamma),
        table.confidence(0, DetectorKind::Hough),
    ];
    let avg3 = phi.iter().sum::<f64>() / 3.0;
    assert!((avg3 - 5.0 / 9.0).abs() < 1e-12);
    assert!(avg3 > 0.5);
    // With all four families (KL silent) the average drops below 0.5.
    assert!(!Average.classify(&table)[0].accepted);
}

/// §2.1.2: the Simpson index is 1 when one alarm's traffic is
/// included in the other's, 0 when they do not intersect.
#[test]
fn simpson_index_definition() {
    let m = SimilarityMeasure::Simpson;
    // Inclusion.
    assert_eq!(m.value(3, 3, 100), 1.0);
    // Disjoint.
    assert_eq!(m.value(0, 10, 10), 0.0);
    // |E1∩E2| / min(|E1|,|E2|).
    assert!((m.value(2, 4, 8) - 0.5).abs() < 1e-12);
}

/// Fig. 1: three alarms over one flow — packet granularity relates
/// only the two alarms sharing packets; flow granularity relates all
/// three.
#[test]
fn figure1_granularity_effect() {
    // Alarm1 covers packets {0,1}, Alarm2 {3,4}, Alarm3 {4,5} — all on
    // the same flow (items map to the flow id 7 at flow granularity).
    let est = SimilarityEstimator::default();
    // Packet granularity: sets of packet ids.
    let packet_sets = vec![vec![0u32, 1], vec![3, 4], vec![4, 5]];
    let g = est.build_graph(&packet_sets);
    assert_eq!(g.edge_count(), 1); // only Alarm2–Alarm3
                                   // Flow granularity: all alarms resolve to the same flow.
    let flow_sets = vec![vec![7u32], vec![7], vec![7]];
    let g2 = est.build_graph(&flow_sets);
    assert_eq!(g2.edge_count(), 3); // complete triangle
}

/// §2.2.3 / Table 2: SCANN iterates correspondence analysis to
/// convergence — re-fitting on the reduced-space assignments until
/// they stabilise — and on clearly separated communities its verdicts
/// agree with the strong consensus that Table 2 reports for the
/// optimally-tuned detectors. `classify_single_round` is the one-CA
/// pass the iteration starts from and is pinned as its equivalence
/// oracle at `max_rounds = 1` (see `lint/oracles.toml`,
/// `scann-convergence`).
#[test]
fn table2_scann_converges_and_keeps_the_consensus() {
    use mawilab::combiner::{Scann, SCANN_MAX_ROUNDS};
    // Strong anomalies: broad multi-detector agreement. Noise: a
    // single sensitive configuration fires.
    let mut rows = Vec::new();
    for i in 0..6usize {
        let mut row = [false; 12];
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = (i + j) % 3 != 2; // 8 of 12 configurations agree
        }
        rows.push(row);
    }
    for i in 0..6usize {
        let mut row = [false; 12];
        row[i % 12] = true;
        rows.push(row);
    }
    let table = VoteTable::from_rows(rows);

    let iterated = Scann::default().classify_detailed(&table);
    // Capping at one round reproduces the single-round oracle exactly.
    let capped = Scann {
        max_rounds: 1,
        ..Scann::default()
    };
    let single = capped.classify_single_round(&table);
    assert_eq!(capped.classify_detailed(&table), single);
    // Convergence reached a fixed point within the default cap: a
    // doubled cap changes nothing.
    let relaxed = Scann {
        max_rounds: 2 * SCANN_MAX_ROUNDS,
        ..Scann::default()
    };
    assert_eq!(iterated, relaxed.classify_detailed(&table));
    // Table-2 expectation: the converged verdicts keep the clean
    // separation — every strong community accepted, every noise
    // community rejected, with a usable relative distance.
    for (c, d) in iterated.iter().enumerate() {
        assert_eq!(d.accepted, c < 6, "community {c}");
        assert!(d.relative_distance.is_some());
    }
}

/// §4.1.1: rule degree example — rules <IPA,*,IPB,*> and
/// <IPA,80,IPC,12345> give degree (2+4)/2 = 3.
#[test]
fn rule_degree_worked_example() {
    use mawilab::model::TrafficRule;
    let a = Ipv4Addr::new(198, 51, 100, 1);
    let b = Ipv4Addr::new(198, 51, 100, 2);
    let c = Ipv4Addr::new(198, 51, 100, 3);
    let r1 = TrafficRule {
        src: Some(a),
        dst: Some(b),
        ..Default::default()
    };
    let r2 = TrafficRule {
        src: Some(a),
        sport: Some(80),
        dst: Some(c),
        dport: Some(12345),
        proto: None,
    };
    let degree = (r1.degree() + r2.degree()) as f64 / 2.0;
    assert_eq!(degree, 3.0);
}

/// §4.1.1: rule support example — rules covering 50% and 25% of
/// disjoint traffic give support 75%.
#[test]
fn rule_support_worked_example() {
    use mawilab::mining::{mine_rules, Transaction};
    let a = Ipv4Addr::new(198, 51, 100, 1);
    // 4 transactions of pattern 1, 2 of pattern 2, 2 unmatched: the
    // two mined rules cover 50% + 25% = 75%.
    let mut txs = Vec::new();
    for i in 0..4u8 {
        txs.push(Transaction::new(
            a,
            80,
            Ipv4Addr::new(10, 0, 0, i),
            1000 + i as u16,
        ));
    }
    for _ in 0..2 {
        txs.push(Transaction::new(
            Ipv4Addr::new(198, 51, 100, 9),
            443,
            Ipv4Addr::new(10, 9, 9, 9),
            2222,
        ));
    }
    txs.push(Transaction::new(
        Ipv4Addr::new(1, 1, 1, 1),
        1,
        Ipv4Addr::new(2, 2, 2, 2),
        2,
    ));
    txs.push(Transaction::new(
        Ipv4Addr::new(3, 3, 3, 3),
        3,
        Ipv4Addr::new(4, 4, 4, 4),
        4,
    ));
    let mined = mine_rules(&txs, 0.25);
    assert!(
        (mined.rule_support - 0.75).abs() < 1e-12,
        "support = {}",
        mined.rule_support
    );
}
