//! Confidence equivalence suite — pins the tentpole contract of the
//! confidence-scored labels:
//!
//! 1. **the score is a bounded, monotone evidence summary** —
//!    `confidence_score` stays in [0, 1] and is strictly monotone in
//!    the number of concurring combination strategies, at every
//!    margin and vote fraction (proptest);
//! 2. **thresholds off ≡ the hard labels** — with
//!    `confidence_thresholds: None` the tier is bound to the hard
//!    accept/reject decision (never `Uncertain`), on arbitrary vote
//!    tables (proptest) and through every labeling path;
//! 3. **thresholds only ever add the tier** — batch, streaming,
//!    online and warm runs produce byte-identical decisions, labels
//!    and scores whether thresholds are on or off, across
//!    `MAWILAB_THREADS` ∈ {1, 2, 4, 13}.
//!
//! Tests mutating `MAWILAB_THREADS` share `ENV_LOCK` (the variable is
//! process-wide).

use mawilab::combiner::{
    confidence_score, label_confidences, CombinationStrategy, ConfidenceThresholds, ConfidenceTier,
    Scann, VoteTable,
};
use mawilab::core::{
    MawilabPipeline, OnlinePipeline, PipelineConfig, StreamingPipeline, WarmState,
};
use mawilab::label::LabeledCommunity;
use mawilab::model::{NoRewindSource, TraceChunker, DEFAULT_CHUNK_US};
use mawilab::synth::{AnomalySpec, SynthConfig, TraceGenerator};
use proptest::prelude::*;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn synth() -> mawilab::synth::LabeledTrace {
    TraceGenerator::new(SynthConfig::default().with_seed(77).with_anomalies(vec![
        AnomalySpec::SynFlood {
            victim: 40,
            dport: 80,
            rate_pps: 250.0,
            duration_s: 12.0,
            spoofed: true,
        },
        AnomalySpec::SasserWorm {
            infected: 3,
            scans: 900,
            rate_pps: 60.0,
        },
    ]))
    .generate()
}

fn config(thresholds: Option<ConfidenceThresholds>) -> PipelineConfig {
    PipelineConfig {
        confidence_thresholds: thresholds,
        ..PipelineConfig::default()
    }
}

/// Labels from one path under thresholds-on and thresholds-off must
/// agree on everything except the tier — and the off-run's tier must
/// be the hard decision restated.
fn assert_thresholds_only_add_the_tier(
    off: &[LabeledCommunity],
    on: &[LabeledCommunity],
    what: &str,
) {
    assert_eq!(off.len(), on.len(), "community count differs ({what})");
    assert!(!off.is_empty(), "no communities labeled ({what})");
    for (a, b) in off.iter().zip(on) {
        assert_eq!(a.community, b.community, "{what}");
        assert_eq!(
            a.label, b.label,
            "label of community {} ({what})",
            a.community
        );
        assert_eq!(a.heuristic, b.heuristic, "{what}");
        assert_eq!(a.window, b.window, "{what}");
        assert_eq!(
            a.confidence.score.to_bits(),
            b.confidence.score.to_bits(),
            "score of community {} depends on thresholds ({what})",
            a.community
        );
        // Thresholds-off: the tier is the hard label restated, and
        // abstention cannot happen.
        assert_ne!(a.confidence.tier, ConfidenceTier::Uncertain, "{what}");
        assert_eq!(
            a.confidence.tier == ConfidenceTier::Anomalous,
            a.label == mawilab::label::MawilabLabel::Anomalous,
            "thresholds-off tier not bound to the hard label ({what})"
        );
    }
}

#[test]
fn thresholds_off_is_byte_identical_across_paths_and_threads() {
    let _lock = ENV_LOCK.lock().unwrap();
    let lt = synth();
    let (off_cfg, on_cfg) = (config(None), config(Some(ConfidenceThresholds::default())));

    for threads in ["1", "2", "4", "13"] {
        std::env::set_var("MAWILAB_THREADS", threads);

        // Batch.
        let off = MawilabPipeline::new(off_cfg.clone()).run(&lt.trace);
        let on = MawilabPipeline::new(on_cfg.clone()).run(&lt.trace);
        assert_eq!(off.decisions, on.decisions, "batch decisions, T={threads}");
        assert_thresholds_only_add_the_tier(
            &off.labeled.communities,
            &on.labeled.communities,
            &format!("batch, T={threads}"),
        );

        // Two-pass streaming.
        let run_streaming = |cfg: &PipelineConfig| {
            let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
            StreamingPipeline::new(cfg.clone())
                .run(&mut source)
                .unwrap()
        };
        let (off, on) = (run_streaming(&off_cfg), run_streaming(&on_cfg));
        assert_eq!(
            off.decisions, on.decisions,
            "streaming decisions, T={threads}"
        );
        assert_thresholds_only_add_the_tier(
            &off.labeled.communities,
            &on.labeled.communities,
            &format!("streaming, T={threads}"),
        );

        // Single-pass online (sealed source: no rewinds).
        let run_online = |cfg: &PipelineConfig| {
            let mut sealed =
                NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
            let report = OnlinePipeline::new(cfg.clone()).run(&mut sealed).unwrap();
            assert_eq!(sealed.rewinds_refused(), 0);
            report
        };
        let (off, on) = (run_online(&off_cfg), run_online(&on_cfg));
        assert_thresholds_only_add_the_tier(
            &off.report.labeled.communities,
            &on.report.labeled.communities,
            &format!("online, T={threads}"),
        );

        // Warm (a carried WarmState at a nonzero decay).
        let run_warm = |cfg: &PipelineConfig| {
            let mut warm = WarmState::new(0.15);
            let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
            OnlinePipeline::new(cfg.clone())
                .run_warm(&mut source, Some(&mut warm))
                .unwrap()
        };
        let (off, on) = (run_warm(&off_cfg), run_warm(&on_cfg));
        assert_thresholds_only_add_the_tier(
            &off.report.labeled.communities,
            &on.report.labeled.communities,
            &format!("warm, T={threads}"),
        );
    }
    std::env::remove_var("MAWILAB_THREADS");
}

proptest! {
    /// The score is bounded and strictly monotone in strategy
    /// agreement: one more concurring strategy always raises it,
    /// whatever the margin and vote mass say.
    #[test]
    fn score_is_bounded_and_monotone_in_agreement(
        accepts in 0usize..=4,
        margin_pct in 0u32..=100,
        votes_pct in 0u32..=100,
    ) {
        let margin = margin_pct as f64 / 100.0;
        let votes = votes_pct as f64 / 100.0;
        let s = confidence_score(accepts, margin, votes);
        prop_assert!((0.0..=1.0).contains(&s), "score {s} out of bounds");
        if accepts < 4 {
            prop_assert!(
                confidence_score(accepts + 1, margin, votes) > s,
                "agreement {accepts}→{} did not raise the score",
                accepts + 1
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Thresholds off: on arbitrary vote tables the tier restates the
    /// hard decision — `Uncertain` cannot occur, and the score stays
    /// finite and bounded.
    #[test]
    fn thresholds_off_tier_restates_the_decision(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 12), 0..8),
    ) {
        let rows: Vec<[bool; 12]> = rows
            .into_iter()
            .map(|r| {
                let mut a = [false; 12];
                for (i, b) in r.into_iter().enumerate() {
                    a[i] = b;
                }
                a
            })
            .collect();
        let table = VoteTable::from_rows(rows);
        let decisions = Scann::default().classify(&table);
        let confidences = label_confidences(&table, &decisions, None);
        prop_assert_eq!(confidences.len(), decisions.len());
        for (c, d) in confidences.iter().zip(&decisions) {
            prop_assert!((0.0..=1.0).contains(&c.score));
            let expected = if d.accepted {
                ConfidenceTier::Anomalous
            } else {
                ConfidenceTier::Benign
            };
            prop_assert_eq!(c.tier, expected);
        }
    }
}
