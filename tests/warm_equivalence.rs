//! Warm-start equivalence suite: the day-over-day warm sweep
//! (`run_days_streaming_warm` / `WarmState`) against its cold-start
//! oracle.
//!
//! Three contracts are pinned here:
//!
//! 1. **decay = 0 is cold, byte for byte** — a warm sweep at zero
//!    decay must reduce to the identical [`deterministic_view`] as
//!    the cold fan-out sweep, at every `MAWILAB_THREADS` setting
//!    (the warm path runs sequentially; the cold path fans out — the
//!    labels must not care);
//! 2. **era boundaries reset the carried state** — the seeded 6-day
//!    window spans the 2006-07-01 CAR→100 Mbps upgrade and must
//!    reset exactly once, while a same-era window never resets;
//! 3. **a singleton Louvain seed is the cold start** — seeding with
//!    the identity partition (every node its own community, exactly
//!    cold Louvain's initial state) reproduces `louvain` byte for
//!    byte on arbitrary graphs.
//!
//! Tests mutating `MAWILAB_THREADS` share `ENV_LOCK` (the variable is
//! process-wide).

use mawilab::graph::{louvain, louvain_seeded, Graph, Partition};
use mawilab_bench::archive::{
    collect_archive, collect_archive_warm, default_sweep_start, deterministic_view,
    month_sweep_days, smoke_archive_days, ArchiveBenchArgs,
};
use proptest::prelude::*;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Six consecutive tiny-scale days through the 2006-07-01 link-era
/// boundary — the month-smoke window.
fn boundary_args() -> ArchiveBenchArgs {
    ArchiveBenchArgs {
        scale: 0.2,
        days: month_sweep_days(default_sweep_start(), 6),
        ..Default::default()
    }
}

#[test]
fn warm_zero_decay_sweep_matches_cold_across_thread_counts() {
    let _lock = ENV_LOCK.lock().unwrap();
    let args = boundary_args();

    std::env::set_var("MAWILAB_THREADS", "1");
    let cold = deterministic_view(&collect_archive(&args));
    assert!(cold.contains("2006-07-01"), "sweep crossed the boundary");

    for threads in ["1", "2", "4", "13"] {
        std::env::set_var("MAWILAB_THREADS", threads);
        let (warm, stats) = collect_archive_warm(&args, 0.0);
        assert_eq!(
            deterministic_view(&warm),
            cold,
            "decay-0 warm sweep diverged from cold at MAWILAB_THREADS={threads}"
        );
        assert_eq!(stats.seeded_days, 0, "zero decay must never seed Louvain");
    }
    std::env::remove_var("MAWILAB_THREADS");
}

#[test]
fn warm_state_resets_exactly_at_the_era_boundary() {
    let _lock = ENV_LOCK.lock().unwrap();
    // Crossing 2006-07-01: the carried baselines describe the old
    // 18 Mbps link and must be dropped exactly once.
    let (outcome, stats) = collect_archive_warm(&boundary_args(), 0.5);
    assert!(outcome.failed.is_empty(), "synthetic days cannot fail");
    assert_eq!(
        stats.era_resets, 1,
        "era upgrade must reset warm state once"
    );

    // A window inside one era must never reset, and by its end the
    // sweep is carrying communities forward.
    let smoke = ArchiveBenchArgs {
        scale: 0.2,
        days: smoke_archive_days(),
        ..Default::default()
    };
    let (_, s) = collect_archive_warm(&smoke, 0.5);
    assert_eq!(s.era_resets, 0, "same-era window must not reset");
    assert!(s.carried_signatures > 0, "alarming days must leave a carry");
}

/// Calendar gaps compound the decay: a warm sweep that jumps two
/// years mid-era must arrive at the post-gap day effectively cold —
/// `decay^gap_days` underflows to zero, so the day's reduction is
/// byte-identical to a cold run of that day alone. Consecutive days
/// are untouched by the gap rule (`decay.powi(1)` is exact), which
/// the sweeps above pin byte-for-byte at every thread count.
#[test]
fn a_multi_day_gap_decays_the_carry_to_cold() {
    let _lock = ENV_LOCK.lock().unwrap();
    use mawilab::model::TraceDate;

    // Two consecutive Sasser-onset days, then a ~750-day jump that
    // stays inside the 18 Mbps era: no era reset fires, so only the
    // gap decay separates the carried state from the post-gap day.
    let args = ArchiveBenchArgs {
        scale: 0.2,
        days: vec![
            TraceDate::new(2004, 5, 10),
            TraceDate::new(2004, 5, 11),
            TraceDate::new(2006, 6, 1),
        ],
        ..Default::default()
    };
    let (warm, stats) = collect_archive_warm(&args, 0.15);
    assert_eq!(stats.era_resets, 0, "same-era jump must not reset");

    let cold_day = ArchiveBenchArgs {
        scale: 0.2,
        days: vec![TraceDate::new(2006, 6, 1)],
        ..Default::default()
    };
    let cold = collect_archive(&cold_day);
    // The first record line carries the "days:" prefix of the view.
    let day_line = |view: String| {
        view.lines()
            .find(|l| l.contains("2006-06-01 packets="))
            .expect("post-gap day reduced")
            .trim_start_matches("days:")
            .to_string()
    };
    assert_eq!(
        day_line(deterministic_view(&warm)),
        day_line(deterministic_view(&cold)),
        "a two-year gap must decay the carried priors to nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A singleton seed (the identity partition) is exactly cold
    /// Louvain's initial state, so the seeded run must reproduce the
    /// cold run byte for byte — on arbitrary graphs and resolutions.
    #[test]
    fn singleton_seed_reproduces_cold_louvain(
        n in 1usize..40,
        edges in prop::collection::vec((any::<u32>(), any::<u32>(), 1u32..100), 0..120),
        res_tenths in 1u32..30,
    ) {
        let mut g = Graph::new(n);
        for &(u, v, w) in &edges {
            g.add_edge(u as usize % n, v as usize % n, w as f64 / 100.0);
        }
        let resolution = res_tenths as f64 / 10.0;
        let cold = louvain(&g, resolution);
        let seed = Partition::from_labels((0..n).collect());
        let seeded = louvain_seeded(&g, resolution, &seed);
        prop_assert_eq!(seeded, cold);
    }
}
