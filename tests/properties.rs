//! Cross-crate property-based tests (proptest) on the pipeline's core
//! invariants.

use mawilab::combiner::{
    Average, CombinationStrategy, MajorityVote, Maximum, Minimum, Scann, VoteTable,
};
use mawilab::graph::{louvain, modularity, Graph, Partition};
use mawilab::mining::{apriori, Transaction};
use mawilab::model::pcap::{read_pcap, write_pcap};
use mawilab::model::{BiflowKey, FlowKey, Packet, Protocol, TcpFlags, Trace, TraceDate, TraceMeta};
use mawilab::similarity::SimilarityMeasure;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u64..1_000_000,
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        40u16..1500,
        prop_oneof![Just(0u8), Just(1), Just(2)],
        any::<u8>(),
    )
        .prop_map(|(ts, src, dst, sport, dport, len, proto, flags)| {
            let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
            let base = meta.window().start_us;
            Packet {
                ts_us: base + ts,
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                // ICMP carries type/code (u8) in the port fields.
                sport: if proto == 2 { sport & 0xff } else { sport },
                dport: if proto == 2 { dport & 0xff } else { dport },
                len,
                proto: match proto {
                    0 => Protocol::Tcp,
                    1 => Protocol::Udp,
                    _ => Protocol::Icmp,
                },
                // TCP flags are only meaningful (and only serialised)
                // for TCP packets.
                flags: if proto == 0 {
                    TcpFlags(flags & 0x3f)
                } else {
                    TcpFlags::empty()
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// pcap round-trips arbitrary packets exactly.
    #[test]
    fn pcap_round_trip(packets in prop::collection::vec(arb_packet(), 0..50)) {
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let trace = Trace::new(meta.clone(), packets);
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let (back, skipped) = read_pcap(std::io::Cursor::new(&buf), meta).unwrap();
        prop_assert_eq!(skipped, 0);
        prop_assert_eq!(back.packets, trace.packets);
    }

    /// Biflow keys are direction-invariant for arbitrary packets.
    #[test]
    fn biflow_direction_invariance(p in arb_packet()) {
        let k = FlowKey::of(&p);
        prop_assert_eq!(BiflowKey::from_flow(&k), BiflowKey::from_flow(&k.reversed()));
    }

    /// Similarity measures stay in [0,1] and are symmetric for any
    /// set sizes.
    #[test]
    fn similarity_bounds(inter in 0usize..100, extra_a in 0usize..100, extra_b in 0usize..100) {
        let a = inter + extra_a;
        let b = inter + extra_b;
        prop_assume!(a > 0 && b > 0);
        for m in [SimilarityMeasure::Simpson, SimilarityMeasure::Jaccard, SimilarityMeasure::Constant] {
            let v = m.value(inter, a, b);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert_eq!(v, m.value(inter, b, a));
            if inter == 0 { prop_assert_eq!(v, 0.0); }
            if inter == a.min(b) && inter > 0 && m == SimilarityMeasure::Simpson {
                prop_assert_eq!(v, 1.0);
            }
        }
    }

    /// Louvain returns a valid partition and never does worse than
    /// all-singletons, on arbitrary sparse graphs.
    #[test]
    fn louvain_validity(edges in prop::collection::vec((0usize..30, 0usize..30, 1u32..100), 0..80)) {
        let mut g = Graph::new(30);
        for (a, b, w) in edges {
            g.add_edge(a, b, w as f64 / 100.0);
        }
        let p = louvain(&g, 1.0);
        prop_assert_eq!(p.community.len(), 30);
        // Dense ids.
        for &c in &p.community {
            prop_assert!(c < p.community_count());
        }
        let singles = Partition::from_labels((0..30).collect());
        prop_assert!(modularity(&g, &p) >= modularity(&g, &singles) - 1e-9);
    }

    /// Every Apriori itemset's reported count is its true frequency,
    /// and meets the threshold.
    #[test]
    fn apriori_support_soundness(
        seeds in prop::collection::vec((0u8..6, 0u8..4, 0u8..6, 0u8..4), 1..40),
        s_pct in 1u8..=10,
    ) {
        let txs: Vec<Transaction> = seeds
            .iter()
            .map(|&(a, sp, b, dp)| {
                Transaction::new(
                    Ipv4Addr::new(10, 0, 0, a),
                    1000 + sp as u16,
                    Ipv4Addr::new(10, 0, 1, b),
                    2000 + dp as u16,
                )
            })
            .collect();
        let min_support = s_pct as f64 / 10.0;
        let min_count = ((min_support * txs.len() as f64).ceil() as usize).max(1);
        for f in apriori(&txs, min_support) {
            let real = txs.iter().filter(|t| t.contains_all(&f.items)).count();
            prop_assert_eq!(real, f.count);
            prop_assert!(f.count >= min_count);
        }
    }

    /// All strategies produce one decision per community, and accepted
    /// sets nest: minimum ⊆ average ⊆ maximum.
    #[test]
    fn strategy_nesting(rows in prop::collection::vec(any::<u16>(), 1..60)) {
        let table = VoteTable::from_rows(
            rows.iter()
                .map(|&bits| {
                    let mut r = [false; 12];
                    for (k, slot) in r.iter_mut().enumerate() {
                        *slot = (bits >> k) & 1 == 1;
                    }
                    r
                })
                .collect(),
        );
        let strategies: Vec<Box<dyn CombinationStrategy>> = vec![
            Box::new(Average), Box::new(Minimum), Box::new(Maximum),
            Box::new(Scann::default()), Box::new(MajorityVote),
        ];
        for s in &strategies {
            prop_assert_eq!(s.classify(&table).len(), table.len());
        }
        let mins = Minimum.classify(&table);
        let avgs = Average.classify(&table);
        let maxs = Maximum.classify(&table);
        for c in 0..table.len() {
            if mins[c].accepted { prop_assert!(avgs[c].accepted); }
            if avgs[c].accepted { prop_assert!(maxs[c].accepted); }
        }
        // SCANN relative distances are finite-or-infinite nonnegative.
        for d in Scann::default().classify(&table) {
            if let Some(rel) = d.relative_distance {
                prop_assert!(rel >= 0.0);
            }
        }
    }
}
