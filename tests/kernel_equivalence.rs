//! Kernel equivalence: the hot-path rewrites against their retained
//! seed oracles, swept across thread counts.
//!
//! Three kernels were replaced for speed and each keeps its seed
//! implementation as an equivalence oracle:
//!
//! * traffic extraction — the inverted `AlarmIndex` (batch, streaming
//!   and horizon paths) vs the per-alarm scan
//!   `extract_traffic_sequential`,
//! * SVD — the size-gated randomized sketch vs the exact Gram engine
//!   `Svd::exact_gram`,
//! * itemset mining — FP-growth vs modified Apriori.
//!
//! Every comparison here demands *byte identity*, and the extraction
//! comparisons sweep `MAWILAB_THREADS` ∈ {1, 2, 4, 13} to pin the
//! canonical-output claim: shard boundaries and hash-map iteration
//! order must never leak into results.
//!
//! Tests mutating `MAWILAB_THREADS` share `ENV_LOCK` (the variable is
//! process-wide).

use mawilab::detectors::{Alarm, AlarmScope, DetectorKind, TraceView, Tuning};
use mawilab::linalg::{Matrix, Svd, SVD_EXACT_GATE};
use mawilab::mining::{apriori, fp_growth, Transaction};
use mawilab::model::{
    FlowKey, FlowTable, Granularity, ItemIndex, NoRewindSource, Packet, PacketSource, Protocol,
    TcpFlags, Trace, TraceChunker, TraceDate, TraceMeta, TrafficRule,
};
use mawilab::similarity::{
    extract_traffic, extract_traffic_sequential, HorizonExtractor, StreamingExtractor,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The sweep: serial, even splits, and a prime count that never
/// divides the shard counts evenly.
const THREAD_SWEEP: [&str; 4] = ["1", "2", "4", "13"];

fn ip(d: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 40, (d % 2) * 7, d)
}

/// Packets drawn from small endpoint pools so alarms genuinely match.
fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u64..200_000_000,
        0u8..6,
        0u8..6,
        0u8..4,
        0u8..4,
        40u16..1500,
        prop_oneof![Just(Protocol::Tcp), Just(Protocol::Udp)],
    )
        .prop_map(|(ts, s, d, sp, dp, len, proto)| {
            let base = TraceMeta::standard(TraceDate::new(2004, 6, 2))
                .window()
                .start_us;
            Packet {
                ts_us: base + ts,
                src: ip(s),
                dst: ip(100 + d),
                sport: 1000 + sp as u16,
                dport: [80, 445, 53, 8080][dp as usize],
                len,
                proto,
                flags: if proto == Protocol::Tcp {
                    TcpFlags::syn()
                } else {
                    TcpFlags::empty()
                },
            }
        })
}

/// (kind, a, b, win_start, win_len) → one alarm over the packet pools.
/// Kinds cover every `AlarmScope` variant and every `AlarmIndex`
/// bucket: host hashes, selective rules, the wildcard rule, flow sets.
fn alarm_from_spec(spec: (u8, u8, u8, u8, u8), packets: &[Packet]) -> Alarm {
    let (kind, a, b, w0, w1) = spec;
    let base = TraceMeta::standard(TraceDate::new(2004, 6, 2))
        .window()
        .start_us;
    let start = base + w0 as u64 * 2_000_000;
    let window = mawilab::model::TimeWindow::new(start, start + (w1 as u64 + 1) * 20_000_000);
    let scope = match kind {
        0 => AlarmScope::SrcHost(ip(a % 6)),
        1 => AlarmScope::DstHost(ip(100 + b % 6)),
        2 => AlarmScope::Rule(TrafficRule {
            dport: Some([80, 445, 53, 8080][a as usize % 4]),
            ..Default::default()
        }),
        3 => AlarmScope::Rule(TrafficRule {
            src: Some(ip(a % 6)),
            sport: Some(1000 + b as u16 % 4),
            ..Default::default()
        }),
        4 => AlarmScope::Rule(TrafficRule::default()), // wildcard
        _ if !packets.is_empty() => AlarmScope::FlowSet(vec![
            FlowKey::of(&packets[a as usize % packets.len()]),
            FlowKey::of(&packets[b as usize % packets.len()]),
        ]),
        _ => AlarmScope::SrcHost(ip(a % 6)),
    };
    Alarm {
        detector: DetectorKind::Pca,
        tuning: Tuning::Optimal,
        window,
        scope,
        score: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch, streaming and horizon extraction agree byte-for-byte
    /// with the sequential per-alarm oracle, at every granularity,
    /// chunk width and thread count — with the horizon path driven
    /// through `NoRewindSource` seals.
    #[test]
    fn extraction_matches_sequential_oracle(
        packets in prop::collection::vec(arb_packet(), 0..120),
        specs in prop::collection::vec((0u8..6, any::<u8>(), any::<u8>(), 0u8..90, 0u8..10), 1..7),
        g in prop_oneof![
            Just(Granularity::Packet),
            Just(Granularity::Uniflow),
            Just(Granularity::Biflow),
        ],
    ) {
        let _lock = ENV_LOCK.lock().unwrap();
        let meta = TraceMeta::standard(TraceDate::new(2004, 6, 2));
        let mut packets = packets;
        packets.sort_by_key(|p| p.ts_us);
        let alarms: Vec<Alarm> = specs.iter().map(|&s| alarm_from_spec(s, &packets)).collect();
        let trace = Trace::new(meta, packets);
        let flows = FlowTable::build(&trace.packets);
        let view = TraceView::new(&trace, &flows);

        let expected = extract_traffic_sequential(&view, &alarms, g);

        for threads in THREAD_SWEEP {
            std::env::set_var("MAWILAB_THREADS", threads);

            prop_assert_eq!(&extract_traffic(&view, &alarms, g), &expected,
                "indexed batch diverged at {} threads", threads);

            for bin_us in [7_000_000u64, 60_000_000] {
                let mut index = ItemIndex::new(g);
                let mut ids = Vec::new();
                let mut ex = StreamingExtractor::new(&alarms);
                let mut source = TraceChunker::new(trace.clone(), bin_us);
                while let Some(chunk) = source.next_chunk().unwrap() {
                    index.ids_of(&chunk.packets, &mut ids);
                    ex.observe(chunk.window, &chunk.packets, &ids);
                }
                prop_assert_eq!(&ex.into_traffic(), &expected,
                    "streaming diverged at {} threads, bin {}", threads, bin_us);

                for lag_us in [0u64, 30_000_000] {
                    let mut index = ItemIndex::new(g);
                    let mut ids = Vec::new();
                    let mut ex = HorizonExtractor::new(lag_us);
                    let mut sealed =
                        NoRewindSource::new(TraceChunker::new(trace.clone(), bin_us));
                    while let Some(chunk) = sealed.next_chunk().unwrap() {
                        index.ids_of(&chunk.packets, &mut ids);
                        ex.observe(chunk.window, &chunk.packets, &ids);
                    }
                    let out = ex.finalize(&alarms);
                    prop_assert_eq!(sealed.rewinds_refused(), 0, "horizon path rewound");
                    prop_assert_eq!(&out.traffic, &expected,
                        "horizon diverged at {} threads, bin {}, lag {}",
                        threads, bin_us, lag_us);
                    let union: std::collections::HashSet<u32> =
                        expected.iter().flatten().copied().collect();
                    prop_assert_eq!(&out.matched, &union);
                }
            }
        }
        std::env::remove_var("MAWILAB_THREADS");
    }

    /// FP-growth reproduces modified Apriori exactly: same itemsets,
    /// same counts, same order, for any transactions and threshold.
    #[test]
    fn fp_growth_matches_apriori(
        seeds in prop::collection::vec((0u8..6, 0u8..4, 0u8..6, 0u8..4), 0..60),
        s_pct in 1u32..=100,
    ) {
        let txs: Vec<Transaction> = seeds
            .iter()
            .map(|&(a, sp, b, dp)| {
                Transaction::new(ip(a), 1000 + sp as u16, ip(100 + b), [80, 445, 53, 8080][dp as usize])
            })
            .collect();
        let s = s_pct as f64 / 100.0;
        prop_assert_eq!(fp_growth(&txs, s), apriori(&txs, s));
    }

    /// SCANN-shaped matrices (≤ 24 indicator columns, far under the
    /// gate) take the exact engine bitwise — so SCANN decisions are
    /// unchanged by construction.
    #[test]
    fn svd_gate_keeps_vote_tables_on_the_exact_path(
        bits in prop::collection::vec(any::<bool>(), 24..480),
    ) {
        let cols = 24;
        let rows = bits.len() / cols;
        let mut a = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                a[(i, j)] = if bits[i * cols + j] { 1.0 } else { 0.0 };
            }
        }
        prop_assert!(cols <= SVD_EXACT_GATE);
        let gated = Svd::with_tolerance(&a, 1e-12);
        let exact = Svd::exact_gram(&a, 1e-12);
        prop_assert_eq!(&gated.sigma, &exact.sigma);
        prop_assert_eq!(gated.u.max_abs_diff(&exact.u), 0.0);
        prop_assert_eq!(gated.v.max_abs_diff(&exact.v), 0.0);
    }
}

/// The randomized sketch is bit-reproducible at every thread count
/// (fixed-seed generator, no wall clock, no work stealing) and
/// reconstructs its input as faithfully as the exact engine.
#[test]
fn randomized_svd_is_thread_count_invariant() {
    let _lock = ENV_LOCK.lock().unwrap();
    // Deterministic low-rank matrix above the gate.
    let (n, m, r) = (140, 90, 12);
    let mut state = 0x5eed_u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut left = Matrix::zeros(n, r);
    let mut right = Matrix::zeros(r, m);
    for v in 0..n * r {
        left[(v / r, v % r)] = next();
    }
    for v in 0..r * m {
        right[(v / m, v % m)] = next();
    }
    let a = left.matmul(&right);

    let mut reference: Option<Svd> = None;
    for threads in THREAD_SWEEP {
        std::env::set_var("MAWILAB_THREADS", threads);
        let svd = Svd::with_tolerance(&a, 1e-12);
        assert!(
            svd.reconstruct().max_abs_diff(&a) < 1e-8,
            "poor reconstruction"
        );
        if let Some(prev) = &reference {
            assert_eq!(prev.sigma, svd.sigma, "sigma varies with {threads} threads");
            assert_eq!(prev.u.max_abs_diff(&svd.u), 0.0);
            assert_eq!(prev.v.max_abs_diff(&svd.v), 0.0);
        } else {
            reference = Some(svd);
        }
    }
    std::env::remove_var("MAWILAB_THREADS");
}
