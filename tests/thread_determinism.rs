//! Thread-count invariance of the full pipeline.
//!
//! Every parallel stage (detector fan-out, sharded graph build,
//! Louvain proposal scans) is built on `mawilab-exec`, whose contract
//! is order-preserving determinism — so `MAWILAB_THREADS=1` and any
//! larger setting must label a trace byte-identically.
//!
//! Kept as the single `#[test]` of this integration binary: it
//! mutates the process-wide `MAWILAB_THREADS` variable, and a sibling
//! test running concurrently in the same process would race on it.

use mawilab::core::{MawilabPipeline, PipelineConfig, StreamingPipeline};
use mawilab::label::MawilabLabel;
use mawilab::model::{TraceChunker, DEFAULT_CHUNK_US};
use mawilab::synth::{SynthConfig, TraceGenerator};

/// Decisions, labels, graph shape and member lists of one batch +
/// one streaming run.
fn run_once(
    lt: &mawilab::synth::LabeledTrace,
) -> (Vec<bool>, Vec<MawilabLabel>, usize, Vec<Vec<usize>>) {
    let config = PipelineConfig::default();
    let report = MawilabPipeline::new(config.clone()).run(&lt.trace);

    let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
    let streamed = StreamingPipeline::new(config).run(&mut source).unwrap();
    assert_eq!(
        streamed.decisions, report.decisions,
        "batch/streaming diverged"
    );

    let decisions = report.decisions.iter().map(|d| d.accepted).collect();
    let labels = report.labeled.communities.iter().map(|c| c.label).collect();
    let members = (0..report.community_count())
        .map(|c| report.communities.members(c).to_vec())
        .collect();
    (
        decisions,
        labels,
        report.communities.graph.edge_count(),
        members,
    )
}

#[test]
fn pipeline_is_identical_at_every_thread_count() {
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(99)).generate();

    std::env::set_var("MAWILAB_THREADS", "1");
    let single = run_once(&lt);
    for threads in ["2", "4", "13"] {
        std::env::set_var("MAWILAB_THREADS", threads);
        let multi = run_once(&lt);
        assert_eq!(single, multi, "output changed at MAWILAB_THREADS={threads}");
    }
    std::env::remove_var("MAWILAB_THREADS");
}
