//! Thread-count invariance of the full pipeline and the archive sweep.
//!
//! Every parallel stage (detector fan-out, sharded graph build,
//! Louvain proposal scans, sharded trace generation, harness day
//! fan-out) is built on `mawilab-exec`, whose contract is
//! order-preserving determinism — so `MAWILAB_THREADS=1` and any
//! larger setting must label a trace byte-identically, and a whole
//! month-scale archive sweep must reduce to identical metrics.
//!
//! Tests in this binary share `ENV_LOCK`: they mutate the
//! process-wide `MAWILAB_THREADS` variable, and siblings running
//! concurrently would race on it.

use mawilab::core::{MawilabPipeline, OnlinePipeline, PipelineConfig, StreamingPipeline};
use mawilab::label::MawilabLabel;
use mawilab::model::{NoRewindSource, TraceChunker, DEFAULT_CHUNK_US};
use mawilab::synth::{SynthConfig, TraceGenerator};
use mawilab_bench::archive::{
    collect_archive, default_sweep_start, deterministic_view, month_sweep_days, ArchiveBenchArgs,
};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Decisions, labels, graph shape and member lists of one batch run,
/// one two-pass streaming run and one single-pass online run.
fn run_once(
    lt: &mawilab::synth::LabeledTrace,
) -> (Vec<bool>, Vec<MawilabLabel>, usize, Vec<Vec<usize>>) {
    let config = PipelineConfig::default();
    let report = MawilabPipeline::new(config.clone()).run(&lt.trace);

    let mut source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
    let streamed = StreamingPipeline::new(config.clone())
        .run(&mut source)
        .unwrap();
    assert_eq!(
        streamed.decisions, report.decisions,
        "batch/streaming diverged"
    );

    let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
    let online = OnlinePipeline::new(config).run(&mut sealed).unwrap();
    assert_eq!(sealed.rewinds_refused(), 0, "online pipeline rewound");
    assert_eq!(
        online.report.decisions, report.decisions,
        "batch/online diverged"
    );

    let decisions = report.decisions.iter().map(|d| d.accepted).collect();
    let labels = report.labeled.communities.iter().map(|c| c.label).collect();
    let members = (0..report.community_count())
        .map(|c| report.communities.members(c).to_vec())
        .collect();
    (
        decisions,
        labels,
        report.communities.graph.edge_count(),
        members,
    )
}

#[test]
fn pipeline_is_identical_at_every_thread_count() {
    let _lock = ENV_LOCK.lock().unwrap();
    let lt = TraceGenerator::new(SynthConfig::default().with_seed(99)).generate();

    std::env::set_var("MAWILAB_THREADS", "1");
    let single = run_once(&lt);
    for threads in ["2", "4", "13"] {
        std::env::set_var("MAWILAB_THREADS", threads);
        let multi = run_once(&lt);
        assert_eq!(single, multi, "output changed at MAWILAB_THREADS={threads}");
    }
    std::env::remove_var("MAWILAB_THREADS");
}

#[test]
fn archive_sweep_is_identical_at_thread_counts_one_and_four() {
    let _lock = ENV_LOCK.lock().unwrap();
    // The month-smoke sweep: six consecutive days through the
    // 2006-07-01 era boundary, tiny scale.
    let args = ArchiveBenchArgs {
        scale: 0.2,
        days: month_sweep_days(default_sweep_start(), 6),
        ..Default::default()
    };

    std::env::set_var("MAWILAB_THREADS", "1");
    let single = deterministic_view(&collect_archive(&args));
    std::env::set_var("MAWILAB_THREADS", "4");
    let multi = deterministic_view(&collect_archive(&args));
    std::env::remove_var("MAWILAB_THREADS");

    assert!(single.contains("2006-07-01"), "sweep crossed the boundary");
    assert_eq!(
        single, multi,
        "archive sweep metrics changed with MAWILAB_THREADS"
    );
}
