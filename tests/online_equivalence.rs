//! Single-pass/two-pass equivalence: the acceptance gate of the
//! online-labeler refactor.
//!
//! `OnlinePipeline` drains a source exactly once — detection and
//! traffic extraction share the drain, evidence past the sliding
//! horizon is retired to compact per-flow state — yet its labels must
//! be byte-identical to the legacy two-pass `StreamingPipeline`
//! (retained as the equivalence oracle) across seeds, chunk widths,
//! horizon lags, granularities and thread counts. Every online run
//! here goes through a [`NoRewindSource`] seal, so "single pass" is
//! enforced by construction, not just claimed.
//!
//! Tests in this binary share `ENV_LOCK` where they touch the
//! process-wide `MAWILAB_THREADS` variable.

use mawilab::core::{OnlinePipeline, PipelineConfig, StreamingPipeline};
use mawilab::label::LabeledCommunity;
use mawilab::model::{Granularity, NoRewindSource, SourceError, TraceChunker, DEFAULT_CHUNK_US};
use mawilab::synth::{AnomalySpec, SynthConfig, TraceGenerator};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn synth(seed: u64) -> mawilab::synth::LabeledTrace {
    TraceGenerator::new(SynthConfig::default().with_seed(seed).with_anomalies(vec![
        AnomalySpec::SynFlood {
            victim: 40,
            dport: 80,
            rate_pps: 250.0,
            duration_s: 12.0,
            spoofed: true,
        },
        AnomalySpec::SasserWorm {
            infected: 3,
            scans: 900,
            rate_pps: 60.0,
        },
    ]))
    .generate()
}

/// Field-by-field comparison of labeled communities (the struct holds
/// f64 metrics, so no derived PartialEq).
fn assert_labels_identical(online: &[LabeledCommunity], oracle: &[LabeledCommunity]) {
    assert_eq!(online.len(), oracle.len(), "community count differs");
    for (s, b) in online.iter().zip(oracle) {
        assert_eq!(s.community, b.community);
        assert_eq!(s.label, b.label, "label of community {}", s.community);
        assert_eq!(
            s.confidence.score.to_bits(),
            b.confidence.score.to_bits(),
            "confidence score of community {}",
            s.community
        );
        assert_eq!(
            s.confidence.tier, b.confidence.tier,
            "confidence tier of community {}",
            s.community
        );
        assert_eq!(
            s.heuristic, b.heuristic,
            "heuristic of community {}",
            s.community
        );
        assert_eq!(s.window, b.window, "window of community {}", s.community);
        assert_eq!(s.alarms, b.alarms);
        assert_eq!(s.detectors, b.detectors);
        assert_eq!(s.summary.rules, b.summary.rules);
        assert_eq!(s.summary.transactions, b.summary.transactions);
        assert!((s.summary.rule_degree - b.summary.rule_degree).abs() < 1e-12);
        assert!((s.summary.rule_support - b.summary.rule_support).abs() < 1e-12);
    }
}

/// One sealed single-pass run vs the two-pass oracle, byte for byte.
fn assert_online_equals_oracle(
    lt: &mawilab::synth::LabeledTrace,
    config: &PipelineConfig,
    chunk_us: u64,
    lag_us: u64,
    what: &str,
) -> mawilab::core::OnlineReport {
    let mut oracle_source = TraceChunker::new(lt.trace.clone(), chunk_us);
    let oracle = StreamingPipeline::new(config.clone())
        .run(&mut oracle_source)
        .unwrap();

    let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), chunk_us));
    let online = OnlinePipeline::new(config.clone())
        .with_lag_us(lag_us)
        .run(&mut sealed)
        .unwrap();
    assert_eq!(sealed.rewinds_refused(), 0, "online path rewound ({what})");

    assert_eq!(online.report.stats.passes(), 1, "not single-pass ({what})");
    assert_eq!(oracle.stats.passes(), 2, "oracle not two-pass ({what})");
    assert_eq!(
        online.report.communities.alarms, oracle.communities.alarms,
        "alarms differ ({what})"
    );
    assert_eq!(
        online.report.communities.traffic, oracle.communities.traffic,
        "traffic sets differ ({what})"
    );
    assert_eq!(online.report.votes, oracle.votes, "votes differ ({what})");
    assert_eq!(
        online.report.decisions, oracle.decisions,
        "decisions differ ({what})"
    );
    assert_labels_identical(
        &online.report.labeled.communities,
        &oracle.labeled.communities,
    );
    online
}

#[test]
fn single_pass_equals_two_pass_across_seeds_and_chunk_widths() {
    let config = PipelineConfig::default();
    for seed in [11u64, 222, 3333] {
        let lt = synth(seed);
        for chunk_us in [DEFAULT_CHUNK_US, 20_000_000] {
            assert_online_equals_oracle(
                &lt,
                &config,
                chunk_us,
                mawilab::core::DEFAULT_LAG_US,
                &format!("seed {seed}, chunk {chunk_us}"),
            );
        }
    }
}

#[test]
fn lag_governs_retention_not_labels() {
    // The detectors only alarm at finish(), so the horizon lag must
    // not change a single output byte — it only decides how much raw
    // evidence stays resident. lag=0 retires everything immediately;
    // a day-scale lag retires nothing.
    let lt = synth(222);
    let config = PipelineConfig::default();
    let day_us: u64 = 86_400_000_000;
    for lag_us in [0, 15_000_000, day_us] {
        let online = assert_online_equals_oracle(
            &lt,
            &config,
            DEFAULT_CHUNK_US,
            lag_us,
            &format!("lag {lag_us}"),
        );
        if lag_us == 0 {
            assert_eq!(
                online.horizon_stats.fresh_chunks, 0,
                "lag=0 must retire every chunk as soon as the next high-water lands"
            );
        }
        if lag_us == day_us {
            assert_eq!(
                online.horizon_stats.retired_chunks, 0,
                "a day-scale lag on a 60 s trace must retire nothing"
            );
            // Nothing can seal before stream end either: every window
            // was closed out by finish, not by the watermark.
            assert!(online.windows.iter().all(|w| w.sealed_by_finish));
        }
    }
}

#[test]
fn single_pass_equals_two_pass_at_every_granularity() {
    let lt = synth(77);
    for granularity in [
        Granularity::Packet,
        Granularity::Uniflow,
        Granularity::Biflow,
    ] {
        let config = PipelineConfig {
            granularity,
            ..Default::default()
        };
        assert_online_equals_oracle(
            &lt,
            &config,
            DEFAULT_CHUNK_US,
            mawilab::core::DEFAULT_LAG_US,
            &format!("granularity {granularity}"),
        );
    }
}

#[test]
fn the_two_pass_oracle_cannot_run_behind_a_sealed_source() {
    // The seal is real: the legacy pipeline's pass-2 rewind is
    // refused, so only the single-pass path can operate online.
    let lt = synth(11);
    let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
    let err = StreamingPipeline::new(PipelineConfig::default())
        .run(&mut sealed)
        .unwrap_err();
    assert!(matches!(err, SourceError::RewindUnsupported(_)));
    assert_eq!(sealed.rewinds_refused(), 1);
}

#[test]
fn anomaly_straddling_a_horizon_boundary_labels_identically() {
    // A 12 s SYN flood cannot fit inside a 10 s horizon window, so
    // its alarms span a window boundary; the windowed view folds the
    // community into one window without altering any label.
    let lt = synth(3333);
    let config = PipelineConfig::default();
    let mut oracle_source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
    let oracle = StreamingPipeline::new(config.clone())
        .run(&mut oracle_source)
        .unwrap();

    let horizon_us = 10_000_000;
    let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
    let online = OnlinePipeline::new(config)
        .with_horizon_us(horizon_us)
        .with_lag_us(5_000_000)
        .run(&mut sealed)
        .unwrap();
    assert_eq!(sealed.rewinds_refused(), 0);
    assert_labels_identical(
        &online.report.labeled.communities,
        &oracle.labeled.communities,
    );

    // At least one community genuinely straddles a horizon boundary
    // (starts in one window, ends in a later one).
    let origin = online.windows[0].window.start_us;
    let straddles = online.report.labeled.communities.iter().any(|c| {
        (c.window.start_us - origin) / horizon_us < (c.window.end_us - 1 - origin) / horizon_us
    });
    assert!(straddles, "no community straddled a horizon boundary");
}

#[test]
fn tiny_horizons_leave_empty_windows_but_flatten_back_exactly() {
    // Two-second horizon over a 60 s trace: dozens of windows, most
    // with no community in them (including empty windows after the
    // last anomaly). The windowed view must still cover the stream
    // contiguously and flatten back to the exact labeled set.
    let lt = synth(11);
    let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
    let online = OnlinePipeline::new(PipelineConfig::default())
        .with_horizon_us(2_000_000)
        .with_lag_us(1_000_000)
        .run(&mut sealed)
        .unwrap();
    assert_eq!(sealed.rewinds_refused(), 0);

    assert!(
        online.windows.len() >= 25,
        "only {} windows",
        online.windows.len()
    );
    assert!(
        online.windows.iter().any(|w| w.communities.is_empty()),
        "expected quiet windows at a 2 s horizon"
    );
    // Contiguous, gap-free coverage.
    for pair in online.windows.windows(2) {
        assert_eq!(pair[0].window.end_us, pair[1].window.start_us);
    }
    // Flatten identity: every labeled community lands in exactly one
    // window, none invented, none dropped.
    let mut flat: Vec<usize> = online
        .windows
        .iter()
        .flat_map(|w| w.communities.iter().map(|c| c.community))
        .collect();
    flat.sort_unstable();
    let mut expected: Vec<usize> = online
        .report
        .labeled
        .communities
        .iter()
        .map(|c| c.community)
        .collect();
    expected.sort_unstable();
    assert_eq!(flat, expected);
}

#[test]
fn sealed_window_latency_is_bounded_by_lag_plus_one_chunk() {
    // The bounded-delay statement from the refactor: on a dense
    // stream, a window's label is final no later than `lag` plus one
    // chunk width after the window closes.
    let lt = synth(77);
    let chunk_us = DEFAULT_CHUNK_US;
    let lag_us = 5_000_000;
    let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), chunk_us));
    let online = OnlinePipeline::new(PipelineConfig::default())
        .with_horizon_us(10_000_000)
        .with_lag_us(lag_us)
        .run(&mut sealed)
        .unwrap();
    let watermark_sealed: Vec<_> = online
        .windows
        .iter()
        .filter(|w| !w.sealed_by_finish)
        .collect();
    assert!(
        !watermark_sealed.is_empty(),
        "no window sealed before stream end"
    );
    for w in &watermark_sealed {
        assert!(
            w.latency_us() <= lag_us + chunk_us,
            "window [{}, {}) sealed {} us late (bound {})",
            w.window.start_us,
            w.window.end_us,
            w.latency_us(),
            lag_us + chunk_us
        );
    }
    assert!(online.max_sealed_latency_us() <= lag_us + chunk_us);
}

#[test]
fn single_pass_is_identical_at_every_thread_count() {
    let _lock = ENV_LOCK.lock().unwrap();
    let lt = synth(99);
    let config = PipelineConfig::default();

    let run = |lt: &mawilab::synth::LabeledTrace| {
        let mut sealed = NoRewindSource::new(TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US));
        let online = OnlinePipeline::new(config.clone())
            .run(&mut sealed)
            .unwrap();
        assert_eq!(sealed.rewinds_refused(), 0);
        online
    };

    std::env::set_var("MAWILAB_THREADS", "1");
    let single = run(&lt);
    // The oracle at one thread anchors the whole matrix to the
    // two-pass labels.
    let mut oracle_source = TraceChunker::new(lt.trace.clone(), DEFAULT_CHUNK_US);
    let oracle = StreamingPipeline::new(config.clone())
        .run(&mut oracle_source)
        .unwrap();
    assert_eq!(single.report.decisions, oracle.decisions);
    assert_labels_identical(
        &single.report.labeled.communities,
        &oracle.labeled.communities,
    );

    for threads in ["2", "4", "13"] {
        std::env::set_var("MAWILAB_THREADS", threads);
        let multi = run(&lt);
        assert_eq!(
            multi.report.decisions, single.report.decisions,
            "decisions changed at MAWILAB_THREADS={threads}"
        );
        assert_labels_identical(
            &multi.report.labeled.communities,
            &single.report.labeled.communities,
        );
        assert_eq!(
            multi.windows.len(),
            single.windows.len(),
            "window count changed at MAWILAB_THREADS={threads}"
        );
    }
    std::env::remove_var("MAWILAB_THREADS");
}
