//! Offline, API-compatible subset of the `rand` 0.9 crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored stub provides exactly the surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`
//! - [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! - [`rngs::StdRng`], a deterministic xoshiro256++ generator
//!
//! Determinism is the load-bearing property here: every generator is
//! seeded explicitly (`seed_from_u64`) and there is deliberately *no*
//! entropy source (`thread_rng`/`rng()` are omitted), so all
//! randomness in the workspace flows from configured seeds.

pub mod rngs;

mod range;

pub use range::{SampleRange, SampleUniform};

/// Core trait: a source of random `u64`/`u32` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly from raw generator output via
/// [`Rng::random`]. Mirrors `StandardUniform: Distribution<T>`.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension trait, blanket-implemented for every
/// [`RngCore`], matching the rand 0.9 method names.
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its full/natural domain
    /// (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample within `range` (`a..b` or `a..=b`).
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64, exactly like
    /// upstream `rand_core`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(1..=254u8);
            assert!((1..=254).contains(&v));
        }
    }
}
