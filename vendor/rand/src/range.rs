//! Uniform sampling over `a..b` / `a..=b` ranges.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types that [`crate::Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]`, both bounds inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Width fits in u128 even for the full u64 domain.
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                // Multiply-shift mapping of a 64-bit word onto the span;
                // bias is < 2^-64 per draw, far below test sensitivity.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as u128).wrapping_add(hi) as $t
            }
        }
    )*}
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`crate::Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                <$t>::sample_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*}
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(rng, self.start, self.end)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                <$t>::sample_inclusive(rng, *self.start(), *self.end())
            }
        }
    )*}
}

impl_range_float!(f32, f64);
