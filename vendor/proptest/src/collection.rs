//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, 0..50)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
