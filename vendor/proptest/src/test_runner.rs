//! Case generation and execution.

use crate::strategy::Strategy;

/// Outcome of one property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs failed a `prop_assume!` precondition; the
    /// case is discarded and does not count toward the budget.
    Reject,
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(_msg: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on discarded (`prop_assume!`-rejected) cases.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Deterministic generator driving case synthesis (SplitMix64).
///
/// Seeded from the test's name so distinct properties explore distinct
/// streams, while every run of the same property replays the same
/// cases — failures are always reproducible.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Executes a strategy against a property closure.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        TestRunner {
            config,
            name,
            rng: TestRng::new(seed),
        }
    }

    /// Runs `test` against `config.cases` generated values, panicking
    /// on the first failing case.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < self.config.cases {
            case_index += 1;
            let value = strategy.generate(&mut self.rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "property `{}`: too many prop_assume! rejections \
                             ({rejected} rejects for {passed} passing cases)",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{}` failed at case #{case_index} \
                         ({passed} cases passed before it):\n{msg}",
                        self.name
                    );
                }
            }
        }
    }
}
