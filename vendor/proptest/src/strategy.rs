//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy by mapping generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // wrapping_sub: a sign-extended negative start must not
                // underflow the span computation.
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128)
                    .wrapping_sub(*self.start() as u128)
                    .wrapping_add(1) as u64;
                if span == 0 {
                    // Whole-domain range.
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*}
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
