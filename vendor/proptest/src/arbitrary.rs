//! `any::<T>()` — whole-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite values only: uniform in [-1e9, 1e9], which keeps
        // arithmetic in tests well-behaved.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit - 0.5) * 2e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Whole-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
