//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! implements the slice of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, primitive/range/tuple/
//! `Just`/`prop_oneof!`/`collection::vec` strategies, the `proptest!`
//! macro (including `#![proptest_config(..)]`), and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - case generation is seeded deterministically (per test name), so
//!   failures reproduce across runs — there is no entropy source;
//! - failing cases are reported but not shrunk.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRunner};

pub mod prelude {
    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current property case (without panicking the process
/// before the runner can report which case failed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\nassertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Each function body runs once per generated
/// case; use `prop_assert!`-family macros inside.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            let strategy = ($($strategy,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
