//! Offline, API-compatible subset of the `criterion` benchmark
//! harness.
//!
//! The build environment cannot reach crates.io, so this vendored stub
//! implements the slice of criterion the workspace's seven benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`,
//! and `Bencher::iter`.
//!
//! Behavior mirrors criterion's cargo integration:
//!
//! - under `cargo bench`, cargo passes `--bench` and each closure is
//!   timed (warm-up, then `sample_size` samples; median and
//!   throughput are printed);
//! - under `cargo test`, no `--bench` flag is passed and each closure
//!   runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    /// Median per-iteration time of the last `iter` call, if timed.
    elapsed: &'a mut Option<Duration>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo test`: run the body once, no timing.
    Smoke,
    /// `cargo bench`: calibrate and time.
    Measure,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(routine());
            }
            Mode::Measure => {
                // Calibrate: how many iterations fit the per-sample
                // slice of the measurement budget?
                let probe = Instant::now();
                std::hint::black_box(routine());
                let once = probe.elapsed().max(Duration::from_nanos(1));
                let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
                let iters = (budget / once.as_secs_f64()).clamp(1.0, 1e6) as u64;

                let mut samples: Vec<Duration> = (0..self.sample_size)
                    .map(|_| {
                        let start = Instant::now();
                        for _ in 0..iters {
                            std::hint::black_box(routine());
                        }
                        start.elapsed() / iters as u32
                    })
                    .collect();
                samples.sort();
                *self.elapsed = Some(samples[samples.len() / 2]);
            }
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut elapsed = None;
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed: &mut elapsed,
        };
        f(&mut bencher);
        self.report(&id, elapsed);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut elapsed = None;
        let mut bencher = Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            elapsed: &mut elapsed,
        };
        f(&mut bencher, input);
        self.report(&id, elapsed);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, elapsed: Option<Duration>) {
        let Some(median) = elapsed else {
            if self.mode == Mode::Smoke {
                println!("{}/{}: smoke ok", self.name, id.id);
            }
            return;
        };
        let per_iter = median.as_secs_f64();
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  thrpt: {:.3} Melem/s", n as f64 / per_iter / 1e6),
            Throughput::Bytes(n) => format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / per_iter / (1 << 20) as f64
            ),
        });
        println!(
            "{}/{:<28} time: {:>12}{}",
            self.name,
            id.id,
            format_duration(median),
            rate.unwrap_or_default()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level harness state.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` to bench targets under `cargo bench`;
        // under `cargo test` the flag is absent and we only smoke-run.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
